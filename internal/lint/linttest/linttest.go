// Package linttest runs a lint.Analyzer over an on-disk fixture
// package and checks its diagnostics against `// want` annotations —
// the same contract as golang.org/x/tools' analysistest, rebuilt on
// the standard library so the module stays dependency-free.
//
// A fixture directory (conventionally internal/lint/testdata/src/<name>)
// holds one Go package. Lines that should be flagged carry a trailing
// comment with one or more backquoted regular expressions:
//
//	s.items = nil // want `without s\.mu held`
//
// Every diagnostic must be matched by a want on its line and every
// want must match a diagnostic; order within one line is positional.
// Fixtures are type-checked against the real standard library via the
// source importer, so they may import os, sync, sync/atomic, math, ...
package linttest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"milret/internal/lint"
)

// Run analyzes the fixture package in dir with a and compares
// diagnostics against the // want annotations.
func Run(t *testing.T, dir string, a *lint.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		t.Fatalf("parsing fixture %s: %v", dir, err)
	}
	if len(files) == 0 {
		t.Fatalf("fixture %s has no .go files", dir)
	}

	var typeErrs []error
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, _ := conf.Check(files[0].Name.Name, fset, files, info)
	if len(typeErrs) > 0 {
		for _, e := range typeErrs {
			t.Errorf("fixture type error: %v", e)
		}
		t.Fatalf("fixture %s must type-check", dir)
	}

	diags, err := lint.Run(fset, files, pkg, info, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := collectWants(t, fset, files)
	checkDiagnostics(t, fset, diags, wants)
}

func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

type lineKey struct {
	file string
	line int
}

var wantRE = regexp.MustCompile("`([^`]+)`")

// collectWants parses `// want `re`...` comments into per-line regexp
// lists.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[lineKey][]*regexp.Regexp {
	t.Helper()
	wants := make(map[lineKey][]*regexp.Regexp)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				matches := wantRE.FindAllStringSubmatch(text, -1)
				if len(matches) == 0 {
					t.Errorf("%s: malformed want comment (no backquoted regexp): %s", pos, c.Text)
					continue
				}
				k := lineKey{pos.Filename, pos.Line}
				for _, m := range matches {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, m[1], err)
						continue
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}
	return wants
}

func checkDiagnostics(t *testing.T, fset *token.FileSet, diags []lint.Diagnostic, wants map[lineKey][]*regexp.Regexp) {
	t.Helper()
	got := make(map[lineKey][]lint.Diagnostic)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := lineKey{pos.Filename, pos.Line}
		got[k] = append(got[k], d)
	}
	keys := make(map[lineKey]bool)
	for k := range got {
		keys[k] = true
	}
	for k := range wants {
		keys[k] = true
	}
	sorted := make([]lineKey, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].file != sorted[j].file {
			return sorted[i].file < sorted[j].file
		}
		return sorted[i].line < sorted[j].line
	})
	for _, k := range sorted {
		ds, ws := got[k], wants[k]
		n := len(ds)
		if len(ws) > n {
			n = len(ws)
		}
		for i := 0; i < n; i++ {
			switch {
			case i >= len(ws):
				t.Errorf("%s:%d: unexpected diagnostic: %s: %s", k.file, k.line, ds[i].Analyzer, ds[i].Message)
			case i >= len(ds):
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, ws[i])
			case !ws[i].MatchString(ds[i].Message):
				t.Errorf("%s:%d: diagnostic %q does not match want %q", k.file, k.line, ds[i].Message, ws[i])
			}
		}
	}
}
