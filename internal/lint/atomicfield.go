package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicField enforces atomic-only access to fields that take part in
// lock-free protocols. A field is atomic-only when any of:
//
//   - it carries the `// milret:atomic` annotation;
//   - its address is passed to a sync/atomic function anywhere in the
//     package (atomic.AddUint64(&s.n, 1) makes every other access of
//     s.n a race);
//   - its type is a sync/atomic wrapper (atomic.Bool, atomic.Int64,
//     atomic.Uint64, atomic.Value, ...).
//
// Rules:
//
//   - a plain-typed atomic-only field may only appear as &x.f directly
//     inside a sync/atomic call — any other read, write or
//     address-taking is flagged;
//   - a wrapper-typed field may only be used as a method-call receiver
//     (x.f.Load()) or have its address taken — using it as a value
//     copies the atomic, which detaches it from every concurrent
//     reader;
//   - a struct containing atomic-only fields must not be copied by
//     value: `*p` dereferences used as values, and value (non-pointer)
//     receivers and parameters of such types, are flagged.
//
// Test files are skipped: -race owns data-race detection in tests, and
// white-box tests legitimately poke fields of quiescent values.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "checks that atomically-accessed fields are never read, written or copied plainly",
	Run:  runAtomicField,
}

type atomicChecker struct {
	pass *Pass
	// plain holds plain-typed fields that must only be touched through
	// sync/atomic calls; wrapper holds fields of sync/atomic wrapper
	// types.
	plain   map[*types.Var]bool
	wrapper map[*types.Var]bool
	// sanctioned marks SelectorExpr/StarExpr nodes that appear in an
	// approved position and must not be re-flagged by the use walk.
	sanctioned map[ast.Expr]bool
	// atomicStructs holds named struct types containing atomic-only
	// fields (directly or through unnamed nested structs).
	atomicStructs map[*types.Named]bool
}

func runAtomicField(pass *Pass) error {
	c := &atomicChecker{
		pass:          pass,
		plain:         make(map[*types.Var]bool),
		wrapper:       make(map[*types.Var]bool),
		sanctioned:    make(map[ast.Expr]bool),
		atomicStructs: make(map[*types.Named]bool),
	}
	c.collect()
	if len(c.plain) == 0 && len(c.wrapper) == 0 {
		return nil
	}
	c.collectStructs()
	c.flagUses()
	return nil
}

// collect gathers the atomic-only field sets and sanctions the
// approved access sites, across the whole package, before any use is
// judged.
func (c *atomicChecker) collect() {
	for _, f := range c.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				for _, field := range n.Fields.List {
					_, annotated := directive("atomic", field.Doc, field.Comment)
					for _, name := range field.Names {
						obj, ok := c.pass.TypesInfo.Defs[name].(*types.Var)
						if !ok {
							continue
						}
						if isAtomicWrapperType(obj.Type()) {
							c.wrapper[obj] = true
						} else if annotated {
							c.plain[obj] = true
						}
					}
				}
			case *ast.CallExpr:
				if c.isAtomicPkgCall(n) {
					for _, a := range n.Args {
						if sel, ok := addrOfFieldSel(a); ok {
							if obj := c.fieldObj(sel); obj != nil {
								if !isAtomicWrapperType(obj.Type()) {
									c.plain[obj] = true
								}
								c.sanctioned[sel] = true
							}
						}
					}
				}
			case *ast.SelectorExpr:
				// x.f.Load(): the inner selector is a wrapper field used
				// as a method receiver — approved.
				if inner, ok := n.X.(*ast.SelectorExpr); ok {
					if obj := c.fieldObj(inner); obj != nil && isAtomicWrapperType(obj.Type()) {
						c.sanctioned[inner] = true
					}
				}
				// (*p).f: the deref exists only to reach a field, not to
				// copy the struct.
				if star, ok := n.X.(*ast.StarExpr); ok {
					c.sanctioned[star] = true
				}
			case *ast.UnaryExpr:
				// &x.f on a wrapper field passes the atomic by pointer —
				// approved. (&x.f on a plain atomic-only field is only
				// sanctioned inside a sync/atomic call, handled above.)
				if n.Op == token.AND {
					if sel, ok := n.X.(*ast.SelectorExpr); ok {
						if obj := c.fieldObj(sel); obj != nil && isAtomicWrapperType(obj.Type()) {
							c.sanctioned[sel] = true
						}
					}
				}
			}
			return true
		})
	}
}

// collectStructs records every named struct type that carries an
// atomic-only field, directly or through unnamed nested structs.
func (c *atomicChecker) collectStructs() {
	hasAtomic := func(s *types.Struct) bool {
		var scan func(*types.Struct) bool
		scan = func(s *types.Struct) bool {
			for i := 0; i < s.NumFields(); i++ {
				f := s.Field(i)
				if c.plain[f] || c.wrapper[f] || isAtomicWrapperType(f.Type()) {
					return true
				}
				if nested, ok := f.Type().(*types.Struct); ok && scan(nested) {
					return true
				}
			}
			return false
		}
		return scan(s)
	}
	scope := c.pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if s, ok := named.Underlying().(*types.Struct); ok && hasAtomic(s) {
			c.atomicStructs[named] = true
		}
	}
}

func (c *atomicChecker) flagUses() {
	for _, f := range c.pass.Files {
		if c.pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if c.sanctioned[n] {
					return true
				}
				obj := c.fieldObj(n)
				if obj == nil {
					return true
				}
				if c.plain[obj] {
					c.pass.Reportf(n.Sel.Pos(), "plain access to %s: the field is accessed via sync/atomic elsewhere, so every access must go through sync/atomic", obj.Name())
				} else if c.wrapper[obj] {
					c.pass.Reportf(n.Sel.Pos(), "%s used as a value: copying an atomic wrapper detaches it from concurrent readers — call its methods or pass its address", obj.Name())
				}
			case *ast.StarExpr:
				if c.sanctioned[n] {
					return true
				}
				if named := c.namedAtomicStruct(c.pass.TypesInfo.TypeOf(n)); named != nil {
					c.pass.Reportf(n.Pos(), "dereference copies %s by value, which copies its atomic fields mid-flight — keep it behind the pointer", named.Obj().Name())
				}
			case *ast.FuncDecl:
				c.checkSignature(n)
			}
			return true
		})
	}
}

// checkSignature flags value (non-pointer) receivers and parameters of
// atomic-carrying struct types.
func (c *atomicChecker) checkSignature(fn *ast.FuncDecl) {
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			if named := c.namedAtomicStruct(c.pass.TypesInfo.TypeOf(field.Type)); named != nil {
				c.pass.Reportf(field.Type.Pos(), "%s passes %s by value, which copies its atomic fields — use *%s", what, named.Obj().Name(), named.Obj().Name())
			}
		}
	}
	check(fn.Recv, "receiver")
	if fn.Type.Params != nil {
		check(fn.Type.Params, "parameter")
	}
}

// namedAtomicStruct returns the named type when t is (not a pointer
// to) a struct carrying atomic-only fields.
func (c *atomicChecker) namedAtomicStruct(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	named, ok := t.(*types.Named)
	if !ok || !c.atomicStructs[named] {
		return nil
	}
	return named
}

func (c *atomicChecker) fieldObj(sel *ast.SelectorExpr) *types.Var {
	obj, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok || !obj.IsField() {
		return nil
	}
	return obj
}

func (c *atomicChecker) isAtomicPkgCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

func addrOfFieldSel(e ast.Expr) (*ast.SelectorExpr, bool) {
	u, ok := e.(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil, false
	}
	sel, ok := u.X.(*ast.SelectorExpr)
	return sel, ok
}

// isAtomicWrapperType reports whether t is one of the sync/atomic
// wrapper types (atomic.Bool, atomic.Int64, atomic.Value, ...).
func isAtomicWrapperType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}
