package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// KernelPure enforces the bit-identity discipline inside functions
// annotated `// milret:kernel` (the scalar distance kernels that the
// AVX2 assembly must match bit for bit, see internal/mat):
//
//   - no math.FMA — fused multiply-add rounds once where the assembly's
//     mul+add rounds twice, so results diverge in the last ulp;
//   - no math.Min / math.Max — their NaN and signed-zero semantics
//     differ from the kernels' canonical compare-and-select;
//   - float comparisons must keep the NaN-false polarity the assembly
//     implements: `<`, `<=` and `>` are all false when an operand is
//     NaN and are allowed; `>=`, `==` and `!=` are not, and neither is
//     negating a float comparison (`!(a > b)` is true for NaN where
//     `a <= b` is false);
//   - no range over a map — map iteration order would make a reduction
//     non-deterministic across runs, let alone across scalar and SIMD.
//
// The annotation is opt-in per function, so the analyzer runs
// repo-wide at zero cost outside the kernels.
var KernelPure = &Analyzer{
	Name: "kernelpure",
	Doc:  "checks FMA-free, NaN-false-compare, iteration-order-independent discipline in milret:kernel functions",
	Run:  runKernelPure,
}

func runKernelPure(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if _, ok := funcDirective("kernel", fn); !ok {
				continue
			}
			checkKernelBody(pass, fn.Body)
		}
	}
	return nil
}

func checkKernelBody(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := mathCall(pass, n); ok {
				switch name {
				case "FMA":
					pass.Reportf(n.Pos(), "math.FMA in a milret:kernel function: fused rounding diverges from the AVX2 mul+add bits")
				case "Min", "Max":
					pass.Reportf(n.Pos(), "math.%s in a milret:kernel function: its NaN/±0 semantics differ from the kernels' compare-and-select", name)
				}
			}
		case *ast.BinaryExpr:
			if !isFloatOperand(pass, n.X) && !isFloatOperand(pass, n.Y) {
				return true
			}
			switch n.Op {
			case token.GEQ, token.EQL, token.NEQ:
				pass.Reportf(n.OpPos, "float `%s` in a milret:kernel function: use a NaN-false ordered compare (`<`, `<=`, `>`)", n.Op)
			}
		case *ast.UnaryExpr:
			if n.Op == token.NOT && isFloatComparison(pass, n.X) {
				pass.Reportf(n.Pos(), "negated float comparison in a milret:kernel function: `!(a > b)` is true for NaN where `a <= b` is false — write the NaN-false compare directly")
			}
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(), "range over a map in a milret:kernel function: iteration order would make the reduction non-deterministic")
				}
			}
		}
		return true
	})
}

// mathCall reports whether call invokes a function from package math,
// returning its name.
func mathCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "math" {
		return "", false
	}
	return fn.Name(), true
}

func isFloatOperand(pass *Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isFloatComparison reports whether e (modulo parens) is a comparison
// whose operands are floats.
func isFloatComparison(pass *Pass, e ast.Expr) bool {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			break
		}
		e = p.X
	}
	bin, ok := e.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch bin.Op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		return isFloatOperand(pass, bin.X) || isFloatOperand(pass, bin.Y)
	}
	return false
}
