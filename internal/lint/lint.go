// Package lint is a small, dependency-free analysis framework in the
// spirit of golang.org/x/tools/go/analysis, sized for this repository.
//
// The module deliberately has zero third-party dependencies, so instead
// of importing the x/tools framework we define the minimal surface the
// milret analyzers need: an Analyzer runs over one type-checked package
// and reports position-tagged diagnostics. cmd/milretlint adapts this
// interface to the `go vet -vettool` protocol and to a standalone
// `go list -export` driver.
//
// Suppression: a diagnostic is dropped when the source carries an
// ignore directive of the form
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// either on the same line as the diagnostic or on the line directly
// above it. The reason is mandatory; an ignore without one is itself
// reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	Name string // short lower-case identifier, e.g. "guardcheck"
	Doc  string // one-paragraph description of what it enforces
	Run  func(*Pass) error
}

// Pass carries one type-checked package through an Analyzer's Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one finding, attributed to the analyzer that produced it.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos falls in a *_test.go file. Analyzers
// whose invariants are about production concurrency or durability skip
// test files: tests drive single-goroutine white-box sequences where
// the lock and fsync disciplines deliberately do not apply.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// All returns every registered milret analyzer in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		GuardCheck,
		Durably,
		KernelPure,
		AtomicField,
		PkgDoc,
	}
}

// Run executes the given analyzers over one type-checked package,
// applies //lint:ignore suppression, and returns the surviving
// diagnostics sorted by position.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	diags = suppress(fset, files, diags)
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return diags, nil
}

// ignoreKey identifies one source line of one file.
type ignoreKey struct {
	file string
	line int
}

// suppress drops diagnostics covered by a well-formed //lint:ignore
// directive and appends a diagnostic for each malformed one.
func suppress(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	// ignores maps (file, line) -> analyzer names suppressed there.
	ignores := make(map[ignoreKey]map[string]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				names, reason, _ := strings.Cut(strings.TrimSpace(text), " ")
				if names == "" || strings.TrimSpace(reason) == "" {
					diags = append(diags, Diagnostic{
						Analyzer: "lintdirective",
						Pos:      c.Pos(),
						Message:  "malformed //lint:ignore: need `//lint:ignore <analyzer> <reason>`",
					})
					continue
				}
				// The directive covers its own line (trailing comment)
				// and the next line (standalone comment above the code).
				for _, line := range []int{pos.Line, pos.Line + 1} {
					k := ignoreKey{pos.Filename, line}
					if ignores[k] == nil {
						ignores[k] = make(map[string]bool)
					}
					for _, n := range strings.Split(names, ",") {
						ignores[k][strings.TrimSpace(n)] = true
					}
				}
			}
		}
	}
	if len(ignores) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		set := ignores[ignoreKey{pos.Filename, pos.Line}]
		if set != nil && (set[d.Analyzer] || set["*"]) {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
