package lint

import (
	"go/ast"
	"strings"
)

// The milret annotation grammar. Each directive is a standalone or
// trailing comment of the form
//
//	// milret:<key> <value...>
//
// attached to the declaration it governs:
//
//	milret:guarded-by <mutexField>  on a struct field: the field may only
//	                                be accessed with <mutexField> held on
//	                                the same receiver (guardcheck).
//	milret:atomic                   on a struct field: the field may only
//	                                be accessed through sync/atomic
//	                                (atomicfield).
//	milret:locked <mutexField>      on a function: the named mutex of the
//	                                receiver is held at entry (guardcheck).
//	milret:unguarded <reason>       on a function: guardcheck skips it —
//	                                reserved for construction-time code
//	                                where the value is not yet shared.
//	milret:atomic-rename            on a function: this is an audited
//	                                temp→fsync→rename→dir-fsync helper;
//	                                durably verifies its body instead of
//	                                flagging the os.Rename inside it.
//	milret:kernel                   on a function: kernelpure enforces the
//	                                bit-identity discipline inside it.
const directivePrefix = "milret:"

// directive returns the value of "// milret:<key> ..." if any of the
// comment groups carries it. A bare "// milret:<key>" yields ok=true
// with an empty value.
func directive(key string, groups ...*ast.CommentGroup) (value string, ok bool) {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			text, found := strings.CutPrefix(c.Text, "//")
			if !found {
				continue
			}
			text = strings.TrimSpace(text)
			text, found = strings.CutPrefix(text, directivePrefix)
			if !found {
				continue
			}
			name, rest, _ := strings.Cut(text, " ")
			if name == key {
				return strings.TrimSpace(rest), true
			}
		}
	}
	return "", false
}

// funcDirective looks the directive up on a function declaration's doc
// comment.
func funcDirective(key string, fn *ast.FuncDecl) (string, bool) {
	return directive(key, fn.Doc)
}
