package lint_test

import (
	"testing"

	"milret/internal/lint"
	"milret/internal/lint/linttest"
)

func TestGuardCheck(t *testing.T) {
	linttest.Run(t, "testdata/src/guardcheck", lint.GuardCheck)
}

func TestDurably(t *testing.T) {
	linttest.Run(t, "testdata/src/durably", lint.Durably)
}

func TestKernelPure(t *testing.T) {
	linttest.Run(t, "testdata/src/kernelpure", lint.KernelPure)
}

func TestAtomicField(t *testing.T) {
	linttest.Run(t, "testdata/src/atomicfield", lint.AtomicField)
}
