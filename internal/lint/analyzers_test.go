package lint_test

import (
	"testing"

	"milret/internal/lint"
	"milret/internal/lint/linttest"
)

func TestGuardCheck(t *testing.T) {
	linttest.Run(t, "testdata/src/guardcheck", lint.GuardCheck)
}

func TestDurably(t *testing.T) {
	linttest.Run(t, "testdata/src/durably", lint.Durably)
}

func TestKernelPure(t *testing.T) {
	linttest.Run(t, "testdata/src/kernelpure", lint.KernelPure)
}

func TestAtomicField(t *testing.T) {
	linttest.Run(t, "testdata/src/atomicfield", lint.AtomicField)
}

func TestPkgDoc(t *testing.T) {
	for _, dir := range []string{
		"testdata/src/pkgdoc",     // topic headers only: no canonical doc
		"testdata/src/pkgdocnone", // no package doc at all
		"testdata/src/pkgdocok",   // canonical doc + topic header: clean
		"testdata/src/pkgdocmain", // main package with a scenario opener: clean
	} {
		t.Run(dir, func(t *testing.T) { linttest.Run(t, dir, lint.PkgDoc) })
	}
}
