// Package durafix is the durably fixture: hand-rolled and half-done
// rename dances next to the audited idiom.
package durafix

import "os"

func syncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// saveHandRolled renames without the audited helper: flagged outright.
func saveHandRolled(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path) // want `os\.Rename outside a milret:atomic-rename helper`
}

// badNoSync is annotated but forgets the temp-file fsync.
//
// milret:atomic-rename
func badNoSync(path string, data []byte) error {
	tmp, err := os.CreateTemp(".", "w-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil { // want `without a preceding Sync`
		return err
	}
	return syncDir(".")
}

// badNoDirSync fsyncs the temp file but not the directory, so a crash
// can lose the rename.
//
// milret:atomic-rename
func badNoDirSync(path string, data []byte) error {
	tmp, err := os.CreateTemp(".", "w-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path) // want `without a following directory fsync`
}

// atomicWrite is the complete audited sequence: clean.
//
// milret:atomic-rename
func atomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(".", "w-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(".")
}

var (
	_ = saveHandRolled
	_ = badNoSync
	_ = badNoDirSync
	_ = atomicWrite
)
