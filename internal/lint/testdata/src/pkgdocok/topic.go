// The topic header idiom: a second file may open with a subject-matter
// comment (like wal.go or sched.go do) without disturbing the canonical
// doc in doc.go.
package pkgdocokay

func alsoOK() int { return 5 }

var _ = alsoOK
