// Package pkgdocokay has the canonical doc comment godoc keys on.
package pkgdocokay

func ok() int { return 4 }

var _ = ok
