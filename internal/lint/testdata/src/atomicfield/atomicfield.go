// Package atomfix is the atomicfield fixture: annotated, inferred and
// wrapper-typed atomic fields with plain, copied and disciplined uses.
package atomfix

import "sync/atomic"

type counters struct {
	// milret:atomic
	hits      uint64
	evictions uint64 // atomic-only by inference: see hit()

	ready atomic.Bool
}

// hit is the disciplined path, and what makes evictions atomic-only by
// inference.
func (c *counters) hit() {
	atomic.AddUint64(&c.hits, 1)
	atomic.AddUint64(&c.evictions, 1)
}

func (c *counters) goodLoad() uint64 {
	return atomic.LoadUint64(&c.hits)
}

func (c *counters) goodReady() bool {
	return c.ready.Load()
}

func goodPointerUse(p *counters) *atomic.Bool {
	return &p.ready
}

func (c *counters) badPlainRead() uint64 {
	return c.hits // want `plain access to hits`
}

func (c *counters) badPlainWrite() {
	c.evictions = 0 // want `plain access to evictions`
}

func (c *counters) badCopyWrapper() *atomic.Bool {
	cp := c.ready // want `ready used as a value`
	return &cp
}

func badValueParam(c counters) uint64 { // want `parameter passes counters by value`
	return atomic.LoadUint64(&c.hits)
}

func badDeref(p *counters) counters {
	return *p // want `dereference copies counters by value`
}

// justified reads a counter plainly under a documented suppression.
func (c *counters) justified() uint64 {
	//lint:ignore atomicfield snapshot during single-threaded shutdown
	return c.hits
}

var (
	_ = (*counters).hit
	_ = (*counters).goodLoad
	_ = (*counters).goodReady
	_ = goodPointerUse
	_ = (*counters).badPlainRead
	_ = (*counters).badPlainWrite
	_ = (*counters).badCopyWrapper
	_ = badValueParam
	_ = badDeref
	_ = (*counters).justified
)
