// Package kernfix is the kernelpure fixture: the canonical NaN-false
// early-abandon loop next to every forbidden idiom.
package kernfix

import "math"

// sqDist is the canonical kernel shape — NaN-false `>` abandon check,
// plain mul+add: clean.
//
// milret:kernel
func sqDist(a, b []float64, thr float64) float64 {
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
		if sum > thr {
			return sum
		}
	}
	return sum
}

// badFMA fuses the rounding the assembly does in two steps.
//
// milret:kernel
func badFMA(a, b, c float64) float64 {
	return math.FMA(a, b, c) // want `math\.FMA in a milret:kernel`
}

// badMin delegates NaN and signed-zero handling to math.Min.
//
// milret:kernel
func badMin(a, b float64) float64 {
	return math.Min(a, b) // want `math\.Min in a milret:kernel`
}

// badCompares uses the NaN-polarity-flipping idioms.
//
// milret:kernel
func badCompares(a, b float64) int {
	n := 0
	if a >= b { // want `float .>=. in a milret:kernel`
		n++
	}
	if a == b { // want `float .==. in a milret:kernel`
		n++
	}
	if !(a > b) { // want `negated float comparison`
		n++
	}
	return n
}

// badMapReduce folds in map iteration order.
//
// milret:kernel
func badMapReduce(m map[int]float64) float64 {
	var sum float64
	for _, v := range m { // want `range over a map`
		sum += v
	}
	return sum
}

// headScreen keeps a deliberate NaN-true survivor check with a
// justified suppression: clean.
//
// milret:kernel
func headScreen(sum, thr float64) bool {
	//lint:ignore kernelpure NaN sums must survive screening, by design
	return !(sum > thr)
}

// notAKernel is unannotated, so the discipline does not apply.
func notAKernel(a, b float64) float64 {
	return math.Max(math.FMA(a, b, 1), 0)
}

var (
	_ = sqDist
	_ = badFMA
	_ = badMin
	_ = badCompares
	_ = badMapReduce
	_ = headScreen
	_ = notAKernel
)
