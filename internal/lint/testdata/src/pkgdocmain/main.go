// Scenario-style opener: main packages (commands, examples) are not
// required to use the `Package main` form — any package doc satisfies
// the check.
package main

func main() {}
