// Package guardfix is the guardcheck fixture: a miniature of the real
// retrieval shard, with both disciplined and undisciplined accesses.
package guardfix

import "sync"

type shard struct {
	mu sync.RWMutex

	// milret:guarded-by mu
	items []int
	count int // milret:guarded-by mu
}

// Add holds the write lock for the whole mutation: clean, and the
// deferred unlock must not count as a release.
func (s *shard) Add(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.items = append(s.items, v)
	s.count++
}

// Len reads under the read lock: clean.
func (s *shard) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.items)
}

// BadWrite mutates without any lock: both the store and the load are
// flagged.
func (s *shard) BadWrite(v int) {
	s.items = append(s.items, v) // want `write to s\.items without s\.mu held` `read of s\.items without s\.mu`
}

// BadReadLockWrite writes while holding only the read lock.
func (s *shard) BadReadLockWrite() {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.count++ // want `write to s\.count without s\.mu held`
}

// BadGap keeps reading after releasing the lock.
func (s *shard) BadGap() int {
	s.mu.Lock()
	n := len(s.items)
	s.mu.Unlock()
	return n + len(s.items) // want `read of s\.items without s\.mu`
}

// BadGoroutine spawns a literal that runs concurrently: the caller's
// lock does not protect it.
func (s *shard) BadGoroutine() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.count++ // want `write to s\.count without s\.mu held`
	}()
}

// GoodGoroutine locks for itself inside the literal: clean.
func (s *shard) GoodGoroutine() {
	go func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.count++
	}()
}

// GoodBranchReturn releases in an early-return branch; the branch's
// unlock must not leak into the fallthrough path.
func (s *shard) GoodBranchReturn(limit int) int {
	s.mu.RLock()
	if len(s.items) > limit {
		s.mu.RUnlock()
		return limit
	}
	n := len(s.items)
	s.mu.RUnlock()
	return n
}

// compactLocked follows the Locked-suffix convention: the caller holds
// the receiver's mutexes.
func (s *shard) compactLocked() {
	s.items = s.items[:0]
	s.count = 0
}

// renumber declares the held mutex explicitly.
//
// milret:locked mu
func (s *shard) renumber() {
	s.count = len(s.items)
}

// newShard is construction-time code: the value is not shared yet.
//
// milret:unguarded construction, nothing else can hold the shard
func newShard(vs []int) *shard {
	s := &shard{}
	s.items = vs
	s.count = len(vs)
	return s
}

// Drain carries a justified suppression.
func (s *shard) Drain() []int {
	//lint:ignore guardcheck teardown runs after all readers have exited
	return s.items
}

var _ = (*shard).compactLocked
var _ = (*shard).renumber
var _ = newShard
