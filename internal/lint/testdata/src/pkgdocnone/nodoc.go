package pkgdocnone // want `package pkgdocnone has no package doc comment`

func quux() int { return 3 }

var _ = quux
