package pkgdocfix

func nicate() int { return 2 }

var _ = nicate
