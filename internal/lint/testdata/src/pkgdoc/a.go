// The frobnication pipeline: a topic header that never introduces the
// package itself, so godoc has no canonical entry point.
package pkgdocfix // want `no canonical .Package pkgdocfix \.\.\.. doc comment`

func frob() int { return 1 }

var _ = frob
