package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GuardCheck enforces `// milret:guarded-by <mu>` field annotations: an
// annotated field may only be read with its mutex read- or
// write-locked on the same receiver expression, and only written with
// it write-locked.
//
// The tracker walks each function body sequentially, counting
// Lock/RLock and Unlock/RUnlock calls on sync.Mutex / sync.RWMutex
// expressions. The lock key is the printed receiver expression
// ("s.mu", "d.pmu"), so a guarded access `s.items` checks the key
// "s.mu" — aliasing through a different variable is deliberately not
// tracked and reads as unguarded. Conservative rules that matter:
//
//   - `defer mu.Unlock()` does not release the lock (it runs at
//     function exit), so the canonical lock-defer-use pattern passes.
//   - Branch bodies (if/for/switch/select/range) run on a copy of the
//     lock state and their changes are discarded: an unlock-and-return
//     branch does not unlock the fallthrough path, and a lock acquired
//     only inside a branch is not held after it.
//   - Function literals start from an empty lock state, so a guarded
//     access inside `go func() { ... }()` is flagged unless the
//     literal locks for itself.
//
// Escape hatches, in decreasing order of preference: name the method
// with a "Locked" suffix (callee of code that already holds every
// receiver mutex), annotate `// milret:locked <mu>` (the named
// receiver mutex is held at entry), or `// milret:unguarded <reason>`
// (construction-time code where the value is not yet shared).
// Test files are skipped: tests drive single-goroutine white-box
// sequences where the discipline does not apply.
var GuardCheck = &Analyzer{
	Name: "guardcheck",
	Doc:  "checks that milret:guarded-by fields are only accessed with their mutex held",
	Run:  runGuardCheck,
}

// lockState tracks, per mutex key, how many write locks and read locks
// are held at the current program point of one function walk.
type lockState struct {
	write map[string]int
	read  map[string]int
	// allOf holds receiver names whose every mutex is considered held
	// (Locked-suffix methods).
	allOf map[string]bool
}

func newLockState() *lockState {
	return &lockState{
		write: make(map[string]int),
		read:  make(map[string]int),
		allOf: make(map[string]bool),
	}
}

func (s *lockState) clone() *lockState {
	c := newLockState()
	for k, v := range s.write {
		c.write[k] = v
	}
	for k, v := range s.read {
		c.read[k] = v
	}
	for k := range s.allOf {
		c.allOf[k] = true
	}
	return c
}

type guardChecker struct {
	pass    *Pass
	guarded map[*types.Var]string // field object -> mutex field name
}

func runGuardCheck(pass *Pass) error {
	gc := &guardChecker{pass: pass, guarded: collectGuardedFields(pass)}
	if len(gc.guarded) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || pass.InTestFile(fn.Pos()) {
				continue
			}
			if _, skip := funcDirective("unguarded", fn); skip {
				continue
			}
			st := newLockState()
			recv := receiverName(fn)
			if recv != "" && strings.HasSuffix(fn.Name.Name, "Locked") {
				st.allOf[recv] = true
			}
			if mu, ok := funcDirective("locked", fn); ok && recv != "" {
				for _, m := range strings.Fields(mu) {
					st.write[recv+"."+m]++
				}
			}
			gc.checkBlock(fn.Body.List, st)
		}
	}
	return nil
}

// collectGuardedFields resolves every `// milret:guarded-by <mu>`
// struct-field annotation in the package to its *types.Var.
func collectGuardedFields(pass *Pass) map[*types.Var]string {
	guarded := make(map[*types.Var]string)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu, ok := directive("guarded-by", field.Doc, field.Comment)
				if !ok {
					continue
				}
				if mu == "" {
					pass.Reportf(field.Pos(), "milret:guarded-by needs a mutex field name")
					continue
				}
				for _, name := range field.Names {
					if obj, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						guarded[obj] = mu
					}
				}
			}
			return true
		})
	}
	return guarded
}

func receiverName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return ""
	}
	name := fn.Recv.List[0].Names[0].Name
	if name == "_" {
		return ""
	}
	return name
}

// checkBlock walks stmts sequentially, mutating st for Lock/Unlock
// calls at this nesting level and recursing into compound statements
// with copies of the state.
func (gc *guardChecker) checkBlock(stmts []ast.Stmt, st *lockState) {
	for _, s := range stmts {
		gc.checkStmt(s, st)
	}
}

func (gc *guardChecker) checkStmt(s ast.Stmt, st *lockState) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if key, op, ok := lockCall(gc.pass, s.X); ok {
			applyLockOp(st, key, op)
			return
		}
		gc.checkExpr(s.X, st, false)
	case *ast.DeferStmt:
		// A deferred Unlock runs at function exit: the lock stays held
		// for the rest of the walk. Any other deferred call is checked
		// like a normal call (a deferred closure runs after the locks
		// this function releases, so it gets a fresh state).
		if _, op, ok := lockCall(gc.pass, s.Call); ok && (op == opUnlock || op == opRUnlock) {
			return
		}
		gc.checkExpr(s.Call.Fun, st, false)
		for _, a := range s.Call.Args {
			gc.checkExpr(a, st, false)
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			gc.checkExpr(e, st, false)
		}
		for _, e := range s.Lhs {
			gc.checkExpr(e, st, true)
		}
	case *ast.IncDecStmt:
		gc.checkExpr(s.X, st, true)
	case *ast.SendStmt:
		gc.checkExpr(s.Chan, st, false)
		gc.checkExpr(s.Value, st, false)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			gc.checkExpr(e, st, false)
		}
	case *ast.GoStmt:
		// Arguments are evaluated now, under the current locks; a
		// function-literal body runs concurrently and is checked from
		// an empty lock state inside checkExpr.
		gc.checkExpr(s.Call.Fun, st, false)
		for _, a := range s.Call.Args {
			gc.checkExpr(a, st, false)
		}
	case *ast.IfStmt:
		branch := st.clone()
		if s.Init != nil {
			gc.checkStmt(s.Init, branch)
		}
		gc.checkExpr(s.Cond, branch, false)
		gc.checkBlock(s.Body.List, branch.clone())
		if s.Else != nil {
			gc.checkStmt(s.Else, branch.clone())
		}
	case *ast.ForStmt:
		branch := st.clone()
		if s.Init != nil {
			gc.checkStmt(s.Init, branch)
		}
		if s.Cond != nil {
			gc.checkExpr(s.Cond, branch, false)
		}
		body := branch.clone()
		gc.checkBlock(s.Body.List, body)
		if s.Post != nil {
			gc.checkStmt(s.Post, body)
		}
	case *ast.RangeStmt:
		branch := st.clone()
		gc.checkExpr(s.X, branch, false)
		gc.checkBlock(s.Body.List, branch.clone())
	case *ast.SwitchStmt:
		branch := st.clone()
		if s.Init != nil {
			gc.checkStmt(s.Init, branch)
		}
		if s.Tag != nil {
			gc.checkExpr(s.Tag, branch, false)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			caseState := branch.clone()
			for _, e := range cc.List {
				gc.checkExpr(e, caseState, false)
			}
			gc.checkBlock(cc.Body, caseState)
		}
	case *ast.TypeSwitchStmt:
		branch := st.clone()
		if s.Init != nil {
			gc.checkStmt(s.Init, branch)
		}
		gc.checkStmt(s.Assign, branch)
		for _, c := range s.Body.List {
			gc.checkBlock(c.(*ast.CaseClause).Body, branch.clone())
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			caseState := st.clone()
			if cc.Comm != nil {
				gc.checkStmt(cc.Comm, caseState)
			}
			gc.checkBlock(cc.Body, caseState)
		}
	case *ast.BlockStmt:
		gc.checkBlock(s.List, st.clone())
	case *ast.LabeledStmt:
		gc.checkStmt(s.Stmt, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						gc.checkExpr(v, st, false)
					}
				}
			}
		}
	}
}

// checkExpr recursively checks e for guarded-field accesses. write
// marks the access as a store (or address-taken), which requires the
// write lock rather than just a read lock.
func (gc *guardChecker) checkExpr(e ast.Expr, st *lockState, write bool) {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if obj, ok := gc.pass.TypesInfo.Uses[e.Sel].(*types.Var); ok {
			if mu, guarded := gc.guarded[obj]; guarded {
				gc.checkAccess(e, obj, mu, st, write)
			}
		}
		gc.checkExpr(e.X, st, false)
	case *ast.FuncLit:
		// Concurrent or deferred execution: no caller lock carries in.
		gc.checkBlock(e.Body.List, newLockState())
	case *ast.CallExpr:
		gc.checkExpr(e.Fun, st, false)
		for _, a := range e.Args {
			gc.checkExpr(a, st, false)
		}
	case *ast.UnaryExpr:
		// Taking the address hands out a mutable alias: require the
		// write lock.
		gc.checkExpr(e.X, st, write || e.Op == token.AND)
	case *ast.StarExpr:
		gc.checkExpr(e.X, st, write)
	case *ast.ParenExpr:
		gc.checkExpr(e.X, st, write)
	case *ast.IndexExpr:
		gc.checkExpr(e.X, st, write)
		gc.checkExpr(e.Index, st, false)
	case *ast.IndexListExpr:
		gc.checkExpr(e.X, st, write)
		for _, i := range e.Indices {
			gc.checkExpr(i, st, false)
		}
	case *ast.SliceExpr:
		gc.checkExpr(e.X, st, write)
		for _, i := range []ast.Expr{e.Low, e.High, e.Max} {
			if i != nil {
				gc.checkExpr(i, st, false)
			}
		}
	case *ast.BinaryExpr:
		gc.checkExpr(e.X, st, false)
		gc.checkExpr(e.Y, st, false)
	case *ast.TypeAssertExpr:
		gc.checkExpr(e.X, st, false)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				// Struct-literal keys name fields without accessing a
				// live value; only the value side is an access.
				gc.checkExpr(kv.Value, st, false)
				continue
			}
			gc.checkExpr(el, st, false)
		}
	}
}

func (gc *guardChecker) checkAccess(sel *ast.SelectorExpr, field *types.Var, mu string, st *lockState, write bool) {
	base := types.ExprString(sel.X)
	if st.allOf[base] {
		return
	}
	key := base + "." + mu
	if st.write[key] > 0 {
		return
	}
	if !write && st.read[key] > 0 {
		return
	}
	verb := "read of"
	if write {
		verb = "write to"
	}
	need := key
	if !write {
		need = key + " (or its read lock)"
	}
	gc.pass.Reportf(sel.Sel.Pos(), "%s %s.%s without %s held (field is milret:guarded-by %s)",
		verb, base, field.Name(), need, mu)
}

type lockOp int

const (
	opLock lockOp = iota
	opRLock
	opUnlock
	opRUnlock
)

// lockCall reports whether e is a Lock/RLock/Unlock/RUnlock call on a
// sync.Mutex or sync.RWMutex expression, and returns the printed mutex
// expression as the lock key.
func lockCall(pass *Pass, e ast.Expr) (key string, op lockOp, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", 0, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false
	}
	switch sel.Sel.Name {
	case "Lock":
		op = opLock
	case "RLock":
		op = opRLock
	case "Unlock":
		op = opUnlock
	case "RUnlock":
		op = opRUnlock
	default:
		return "", 0, false
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return "", 0, false
	}
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", 0, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", 0, false
	}
	if obj.Name() != "Mutex" && obj.Name() != "RWMutex" {
		return "", 0, false
	}
	return types.ExprString(sel.X), op, true
}

func applyLockOp(st *lockState, key string, op lockOp) {
	switch op {
	case opLock:
		st.write[key]++
	case opRLock:
		st.read[key]++
	case opUnlock:
		if st.write[key] > 0 {
			st.write[key]--
		}
	case opRUnlock:
		if st.read[key] > 0 {
			st.read[key]--
		}
	}
}
