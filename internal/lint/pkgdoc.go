package lint

import (
	"go/ast"
	"sort"
	"strings"
)

// PkgDoc enforces the repo's package-documentation convention: every
// package must carry a package doc comment on at least one non-test
// file, and for library (non-main) packages at least one of those
// comments must be the canonical `// Package <name> ...` form godoc
// keys on. Extra file-level comments above other package clauses (the
// per-topic headers on wal.go, sched.go, ...) are fine — the rule is
// that the canonical entry point exists, not that it is alone.
//
// Main packages (commands, examples) are only required to have *a*
// package doc; their openers conventionally read `Command <name> ...`
// or describe the scenario directly.
var PkgDoc = &Analyzer{
	Name: "pkgdoc",
	Doc:  "checks that every package has a package doc comment (canonical `Package <name>` form for libraries)",
	Run:  runPkgDoc,
}

func runPkgDoc(pass *Pass) error {
	// Only non-test files count: the doc belongs to the shipped
	// package, and the external `_test` package variant (all files
	// *_test.go) is exempt entirely.
	var files []*ast.File
	for _, f := range pass.Files {
		if !pass.InTestFile(f.Package) {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		return nil
	}
	sort.Slice(files, func(i, j int) bool {
		return pass.Fset.Position(files[i].Package).Filename <
			pass.Fset.Position(files[j].Package).Filename
	})

	name := files[0].Name.Name
	anyDoc, canonical := false, false
	for _, f := range files {
		if f.Doc == nil {
			continue
		}
		anyDoc = true
		if strings.HasPrefix(f.Doc.Text(), "Package "+name+" ") ||
			strings.HasPrefix(f.Doc.Text(), "Package "+name+"\n") {
			canonical = true
		}
	}

	switch {
	case !anyDoc:
		pass.Reportf(files[0].Package, "package %s has no package doc comment on any file", name)
	case name != "main" && !canonical:
		pass.Reportf(files[0].Package, "package %s has file comments but no canonical `Package %s ...` doc comment", name, name)
	}
	return nil
}
