package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Durably enforces the crash-durability idiom for data files: an
// os.Rename onto a data path is only safe when the temp file was
// fsynced before the rename and the containing directory is fsynced
// after it (see internal/store's atomicWriteFile). Two rules:
//
//   - An os.Rename call in a function *without* the
//     `// milret:atomic-rename` annotation is flagged outright: the
//     four hand-rolled copies of the sequence collapsed onto one
//     audited helper, and new copies must not creep back in.
//   - Inside an annotated helper, every os.Rename must be preceded in
//     the source by a Sync() call on an *os.File (the temp-file fsync)
//     and followed by a directory fsync — either a syncDir(...) call
//     or another Sync(). Missing halves get targeted diagnostics.
//
// Test files are skipped: tests rename files to simulate crashes and
// torn states on purpose.
var Durably = &Analyzer{
	Name: "durably",
	Doc:  "checks that os.Rename onto data paths goes through the audited fsync-rename-fsync helper",
	Run:  runDurably,
}

func runDurably(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || pass.InTestFile(fn.Pos()) {
				continue
			}
			_, audited := funcDirective("atomic-rename", fn)
			checkRenames(pass, fn, audited)
		}
	}
	return nil
}

func checkRenames(pass *Pass, fn *ast.FuncDecl, audited bool) {
	var renames []token.Pos
	var fileSyncs, dirSyncs []token.Pos
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isOSRename(pass, call):
			renames = append(renames, call.Pos())
		case isFileSync(pass, call):
			fileSyncs = append(fileSyncs, call.Pos())
		case isSyncDir(call):
			dirSyncs = append(dirSyncs, call.Pos())
		}
		return true
	})
	for _, r := range renames {
		if !audited {
			pass.Reportf(r, "os.Rename outside a milret:atomic-rename helper: use atomicWriteFile so the temp-file fsync and directory fsync cannot be forgotten")
			continue
		}
		if !anyBefore(fileSyncs, r) {
			pass.Reportf(r, "os.Rename without a preceding Sync() of the temp file: a crash can publish an empty or torn file")
		}
		if !anyAfter(dirSyncs, r) && !anyAfter(fileSyncs, r) {
			pass.Reportf(r, "os.Rename without a following directory fsync (syncDir): a crash can lose the rename itself")
		}
	}
}

func anyBefore(ps []token.Pos, ref token.Pos) bool {
	for _, p := range ps {
		if p < ref {
			return true
		}
	}
	return false
}

func anyAfter(ps []token.Pos, ref token.Pos) bool {
	for _, p := range ps {
		if p > ref {
			return true
		}
	}
	return false
}

func isOSRename(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Rename" {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "os"
}

func isFileSync(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Sync" {
		return false
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "os" && obj.Name() == "File"
}

// isSyncDir matches a call to any function named syncDir — the
// directory-fsync helper each package carrying the idiom defines.
func isSyncDir(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "syncDir"
	case *ast.SelectorExpr:
		return fun.Sel.Name == "syncDir"
	}
	return false
}
