package remote

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"milret"
	"milret/internal/retrieval"
	"milret/internal/store"
)

// twoShardFixture reshards a small store two ways and returns the shard
// databases plus the reference and the insertion-order IDs.
func twoShardFixture(t *testing.T) (ref, s0, s1 *milret.Database, ids []string) {
	t.Helper()
	dir := t.TempDir()
	src, ids := buildStore(t, dir)
	dst := filepath.Join(dir, "sharded.milret")
	if err := milret.Reshard(src, dst, 2); err != nil {
		t.Fatal(err)
	}
	open := func(p string) *milret.Database {
		db, err := milret.LoadDatabase(p, milret.Options{VerifyOnLoad: true})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { db.Close() })
		return db
	}
	return open(src), open(store.ShardPath(dst, 0)), open(store.ShardPath(dst, 1)), ids
}

// TestPartialPolicyOnTimeout hangs one partition past the RPC deadline
// mid-scan: "fail" must refuse with ErrUnavailable, "degrade" must
// answer exactly the reachable partitions' merged ranking and count the
// degradation.
func TestPartialPolicyOnTimeout(t *testing.T) {
	ref, s0, _, ids := twoShardFixture(t)

	// Partition 0 answers normally; partition 1 blocks until the client
	// hangs up.
	mux := http.NewServeMux()
	mux.Handle(RPCPath, NewShardServer(s0))
	healthy := httptest.NewServer(mux)
	defer healthy.Close()
	release := make(chan struct{})
	hung := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer hung.Close()
	defer close(release) // un-hang handlers so the graceful Close above can finish

	concept, err := ref.Train(ids[:2], ids[2:3], milret.TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}

	mkTopo := func(partial string) *Topology {
		return &Topology{
			Partitions: []PartitionSpec{
				{Name: "up", Addr: healthy.URL},
				{Name: "down", Addr: hung.URL},
			},
			Partial:      partial,
			RPCTimeoutMS: 200,
			Retries:      0,
		}
	}

	t.Run("fail", func(t *testing.T) {
		coord, err := NewCoordinator(mkTopo(PartialFail), CoordinatorOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer coord.Close()
		_, err = coord.Retrieve(context.Background(), concept, 5, nil, 0)
		if !errors.Is(err, milret.ErrUnavailable) {
			t.Fatalf("Retrieve with a hung partition: %v, want ErrUnavailable", err)
		}
		if n := coord.degraded.Load(); n != 0 {
			t.Errorf("fail policy counted %d degraded queries", n)
		}
	})

	t.Run("degrade", func(t *testing.T) {
		coord, err := NewCoordinator(mkTopo(PartialDegrade), CoordinatorOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer coord.Close()
		got, err := coord.Retrieve(context.Background(), concept, ref.Len(), nil, 0)
		if err != nil {
			t.Fatalf("degrade policy refused: %v", err)
		}
		// The degraded answer must be exactly the reachable partition's
		// images, in the global ranking order.
		var want []milret.Result
		for _, r := range ref.RankAllExcluding(concept, nil) {
			if retrieval.ShardIndexFor(r.ID, 2) == 0 {
				want = append(want, r)
			}
		}
		wantIdentical(t, "degraded topk", got, want)
		if n := coord.degraded.Load(); n != 1 {
			t.Errorf("degraded counter = %d, want 1", n)
		}
		st := coord.Stats()
		if st.DegradedQueries != 1 {
			t.Errorf("stats DegradedQueries = %d", st.DegradedQueries)
		}
		var down *milret.PartitionStats
		for i := range st.Partitions {
			if st.Partitions[i].Name == "down" {
				down = &st.Partitions[i]
			}
		}
		if down == nil || down.Healthy || down.LastError == "" {
			t.Errorf("down partition row = %+v, want unhealthy with an error", down)
		}
	})
}

// truncatingProxy forwards shard RPCs to target, tearing exactly one
// response frame in half each time torn is armed.
func truncatingProxy(t *testing.T, target string, torn *atomic.Bool) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp, err := http.Post(target+RPCPath, "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		frame, err := io.ReadAll(resp.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		if torn.CompareAndSwap(true, false) {
			frame = frame[:len(frame)/2]
		}
		w.Write(frame)
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestTornFrameIsTransportFailure tears response frames mid-wire: the
// CRC/truncation check must surface a retryable transport failure (not
// a garbage answer), and recovery must be seamless once frames flow
// whole again.
func TestTornFrameIsTransportFailure(t *testing.T) {
	ref, s0, s1, ids := twoShardFixture(t)

	mkShard := func(db *milret.Database) *httptest.Server {
		mux := http.NewServeMux()
		mux.Handle(RPCPath, NewShardServer(db))
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		return srv
	}
	direct0 := mkShard(s0)
	var torn atomic.Bool
	proxied1 := truncatingProxy(t, mkShard(s1).URL, &torn)

	topo := &Topology{
		Partitions: []PartitionSpec{
			{Name: "p0", Addr: direct0.URL},
			{Name: "p1", Addr: proxied1.URL},
		},
		RPCTimeoutMS: 2000,
		Retries:      0,
	}
	coord, err := NewCoordinator(topo, CoordinatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	concept, err := ref.Train(ids[:2], nil, milret.TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := ref.RetrieveExcluding(concept, 8, nil)

	torn.Store(true)
	_, err = coord.Retrieve(context.Background(), concept, 8, nil, 0)
	if !errors.Is(err, milret.ErrUnavailable) {
		t.Fatalf("torn frame: %v, want ErrUnavailable", err)
	}

	got, err := coord.Retrieve(context.Background(), concept, 8, nil, 0)
	if err != nil {
		t.Fatalf("after recovery: %v", err)
	}
	wantIdentical(t, "post-recovery topk", got, want)

	// With a retry budget the same tear self-heals inside one call: the
	// first attempt tears, the retry succeeds.
	retrying := NewClient(proxied1.URL, time.Second, 3, time.Millisecond)
	torn.Store(true)
	if _, err := retrying.Ping(context.Background()); err != nil {
		t.Fatalf("retrying ping through a healing proxy: %v", err)
	}
}

// TestStaleCutoffKeepsBitIdentity delays one partition so its cutoff
// lands after every other scan already merged: staleness must only
// weaken pruning, never change the answer.
func TestStaleCutoffKeepsBitIdentity(t *testing.T) {
	ref, s0, s1, ids := twoShardFixture(t)

	fast := http.NewServeMux()
	fast.Handle(RPCPath, NewShardServer(s0))
	fastSrv := httptest.NewServer(fast)
	defer fastSrv.Close()

	slow := NewShardServer(s1)
	slowSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(80 * time.Millisecond) // answer late, within the deadline
		slow.ServeHTTP(w, r)
	}))
	defer slowSrv.Close()

	topo := &Topology{
		Partitions: []PartitionSpec{
			{Name: "fast", Addr: fastSrv.URL},
			{Name: "slow", Addr: slowSrv.URL},
		},
		RPCTimeoutMS: 5000,
	}
	coord, err := NewCoordinator(topo, CoordinatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	for seed := 0; seed < 3; seed++ {
		concept, err := ref.Train(ids[seed:seed+2], ids[seed+5:seed+6], milret.TrainOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for _, recall := range []float64{0, 1.0} {
			got, err := coord.Retrieve(context.Background(), concept, 6, nil, recall)
			if err != nil {
				t.Fatal(err)
			}
			wantIdentical(t, "stale-cutoff topk", got, ref.RetrieveExcluding(concept, 6, nil, milret.WithRecall(recall)))
		}
	}
}

// TestKillAndRestartUnderTraffic kills a shard server mid-stream of
// concurrent queries and restarts it on the same address: every query
// must either answer bit-identically or refuse with ErrUnavailable —
// never a wrong answer — and the coordinator must recover by itself.
func TestKillAndRestartUnderTraffic(t *testing.T) {
	ref, s0, s1, ids := twoShardFixture(t)

	mux0 := http.NewServeMux()
	mux0.Handle(RPCPath, NewShardServer(s0))
	srv0 := httptest.NewServer(mux0)
	defer srv0.Close()

	// Partition 1 listens on a fixed port we control, so it can die and
	// come back at the same address.
	mux1 := http.NewServeMux()
	mux1.Handle(RPCPath, NewShardServer(s1))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	srv1 := &http.Server{Handler: mux1}
	go srv1.Serve(ln)

	topo := &Topology{
		Partitions: []PartitionSpec{
			{Name: "p0", Addr: srv0.URL},
			{Name: "p1", Addr: "http://" + addr},
		},
		Partial:      PartialFail,
		RPCTimeoutMS: 1000,
		Retries:      0,
	}
	coord, err := NewCoordinator(topo, CoordinatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	concept, err := ref.Train(ids[:2], ids[4:5], milret.TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := ref.RetrieveExcluding(concept, 7, nil)

	var (
		stop     atomic.Bool
		okCount  atomic.Int64
		errCount atomic.Int64
		wg       sync.WaitGroup
	)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				got, err := coord.Retrieve(context.Background(), concept, 7, nil, 0)
				if err != nil {
					if !errors.Is(err, milret.ErrUnavailable) {
						t.Errorf("query failed with a non-availability error: %v", err)
						return
					}
					errCount.Add(1)
					continue
				}
				okCount.Add(1)
				wantIdentical(t, "under-churn topk", got, want)
			}
		}()
	}

	time.Sleep(50 * time.Millisecond) // let some healthy traffic through
	srv1.Close()                      // kill partition 1 mid-stream
	time.Sleep(150 * time.Millisecond)

	// Restart at the same address.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	srv2 := &http.Server{Handler: mux1}
	go srv2.Serve(ln2)
	defer srv2.Close()
	time.Sleep(150 * time.Millisecond)

	stop.Store(true)
	wg.Wait()
	if okCount.Load() == 0 {
		t.Error("no query ever succeeded")
	}
	if errCount.Load() == 0 {
		t.Error("the outage was never observed (test too lenient to mean anything)")
	}

	// After the restart a fresh query must succeed and match exactly.
	got, err := coord.Retrieve(context.Background(), concept, 7, nil, 0)
	if err != nil {
		t.Fatalf("after restart: %v", err)
	}
	wantIdentical(t, "post-restart topk", got, want)
}
