package remote

import (
	"context"
	"fmt"
	"image"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"milret"
	"milret/internal/index"
	"milret/internal/qcache"
	"milret/internal/retrieval"
	"milret/internal/server"
)

// partition is one topology slot at runtime: either a locally opened
// database or a client to a remote shard server, plus the health state
// the probe loop maintains.
type partition struct {
	spec PartitionSpec
	db   *milret.Database // local partitions; nil when remote
	cli  *Client          // remote partitions; nil when local

	mu sync.Mutex
	// milret:guarded-by mu
	healthy bool
	// milret:guarded-by mu
	lastErr string
	// milret:guarded-by mu
	images int
	// milret:guarded-by mu
	verify milret.VerifyStatus
}

func (p *partition) remote() bool { return p.cli != nil }

// note records a probe or RPC outcome. A recovery keeps the previous
// error string for postmortems; only a new failure overwrites it.
func (p *partition) note(healthy bool, err error) {
	p.mu.Lock()
	p.healthy = healthy
	if err != nil {
		p.lastErr = err.Error()
	}
	p.mu.Unlock()
}

func (p *partition) snapshot() (healthy bool, lastErr string, images int, verify milret.VerifyStatus) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.healthy, p.lastErr, p.images, p.verify
}

// CoordinatorOptions tunes a coordinator beyond what the topology file
// carries (the file describes the fleet; these describe this process).
type CoordinatorOptions struct {
	// ConceptCacheMB sizes the coordinator's own concept cache (training
	// happens on the coordinator from fetched example bags); 0 disables
	// it.
	ConceptCacheMB int
	// Recall is the default candidate-pruning tier for queries that do
	// not set one (forwarded to every partition; see milret
	// Options.Recall).
	Recall float64
	// Local configures how local (path-backed) partitions are opened.
	Local milret.Options
}

// Coordinator fans queries across a topology of partitions and merges
// their answers so the /v1 surface behaves like one database. It
// implements server.Backend; see the package comment for the merge
// protocol's correctness argument.
type Coordinator struct {
	topo   *Topology
	parts  []*partition
	cache  *qcache.Cache
	recall float64

	degraded atomic.Int64

	stop chan struct{}
	wg   sync.WaitGroup
}

var _ server.Backend = (*Coordinator)(nil)

// NewCoordinator opens every local partition, builds clients for the
// remote ones, runs one synchronous health probe (so the first query
// sees real health state, not optimistic defaults), and starts the
// background probe loop. Call Close when done.
func NewCoordinator(topo *Topology, opts CoordinatorOptions) (*Coordinator, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	c := &Coordinator{
		topo:   topo,
		recall: opts.Recall,
		stop:   make(chan struct{}),
	}
	if opts.ConceptCacheMB > 0 {
		c.cache = qcache.New(int64(opts.ConceptCacheMB) << 20)
	}
	for _, spec := range topo.Partitions {
		p := &partition{spec: spec, healthy: true}
		if spec.Remote() {
			p.cli = NewClient(spec.Addr, topo.RPCTimeout(), topo.Retries, topo.Backoff())
		} else {
			db, err := milret.LoadDatabase(spec.Path, opts.Local)
			if err != nil {
				c.closePartitions()
				return nil, fmt.Errorf("remote: open partition %q: %w", spec.Name, err)
			}
			p.db = db
		}
		c.parts = append(c.parts, p)
	}
	c.probeAll(context.Background())
	c.wg.Add(1)
	go c.healthLoop()
	return c, nil
}

// Close stops the probe loop and flushes local partitions.
func (c *Coordinator) Close() error {
	close(c.stop)
	c.wg.Wait()
	return c.closePartitions()
}

func (c *Coordinator) closePartitions() error {
	var first error
	for _, p := range c.parts {
		if p.db != nil {
			if err := p.db.Flush(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// healthLoop probes every partition at the topology's configured
// interval until Close.
func (c *Coordinator) healthLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.topo.HealthInterval())
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.probeAll(context.Background())
		}
	}
}

// probeAll refreshes each partition's health, image count and
// verification state. Local partitions never fail a probe — their
// failures are load failures, caught before the coordinator exists.
func (c *Coordinator) probeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, p := range c.parts {
		wg.Add(1)
		go func(p *partition) {
			defer wg.Done()
			c.probe(ctx, p)
		}(p)
	}
	wg.Wait()
}

func (c *Coordinator) probe(ctx context.Context, p *partition) {
	if !p.remote() {
		status, _ := p.db.Verification()
		p.mu.Lock()
		p.healthy = true
		p.images = p.db.Len()
		p.verify = status
		p.mu.Unlock()
		return
	}
	pong, err := p.cli.Ping(ctx)
	if err != nil {
		p.note(false, err)
		return
	}
	p.mu.Lock()
	p.healthy = true
	p.images = int(pong.Images)
	p.verify = milret.VerifyStatus(pong.Verify)
	p.mu.Unlock()
}

// owner returns the partition that placement assigns id to.
func (c *Coordinator) owner(id string) *partition {
	return c.parts[retrieval.ShardIndexFor(id, len(c.parts))]
}

// unavailable wraps a partition failure for the partial-result policy
// and the HTTP 503 mapping. Client errors already carry the sentinel;
// this is for coordinator-side verdicts (e.g. a down partition skipped
// without even issuing an RPC).
func unavailable(p *partition, err error) error {
	return fmt.Errorf("remote: partition %q: %v: %w", p.spec.Name, err, milret.ErrUnavailable)
}

// --- server.Backend: introspection -----------------------------------

// Verification merges partition verification states, reporting the
// worst: corrupt anywhere is corrupt everywhere (results merged from a
// corrupt block cannot be trusted), else pending anywhere is pending.
// An unreachable partition reports as pending — its state is unknown,
// not known-bad — with the probe error attached.
func (c *Coordinator) Verification() (milret.VerifyStatus, error) {
	worst := milret.VerifyVerified
	var firstErr error
	for _, p := range c.parts {
		healthy, lastErr, _, verify := p.snapshot()
		if !healthy {
			if worst < milret.VerifyPending {
				worst = milret.VerifyPending
			}
			if firstErr == nil {
				firstErr = unavailable(p, fmt.Errorf("unreachable: %s", lastErr))
			}
			continue
		}
		if verify > worst {
			worst = verify
			if verify == milret.VerifyCorrupt && firstErr == nil {
				firstErr = fmt.Errorf("remote: partition %q reports corrupt data", p.spec.Name)
			}
		}
	}
	return worst, firstErr
}

// Len sums the partitions' live image counts as of their last probe or
// mutation ack (best-effort while a partition is unreachable: its last
// known count is used).
func (c *Coordinator) Len() int {
	n := 0
	for _, p := range c.parts {
		_, _, images, _ := p.snapshot()
		n += images
	}
	return n
}

// Recall returns the coordinator's default candidate-pruning tier.
func (c *Coordinator) Recall() float64 { return c.recall }

// Stats merges the reachable partitions' stats trees (shard rows are
// concatenated in topology order, totals summed), attaches the
// coordinator's own concept-cache counters, and reports the per-
// partition health block. Stats never fails: an unreachable partition
// contributes only its health row.
func (c *Coordinator) Stats() milret.Stats {
	ctx, cancel := context.WithTimeout(context.Background(), c.topo.RPCTimeout())
	defer cancel()
	var st milret.Stats
	st.PartialPolicy = c.topo.PartialPolicy()
	st.DegradedQueries = c.degraded.Load()
	for _, p := range c.parts {
		var (
			ps  milret.Stats
			err error
		)
		if p.remote() {
			ps, err = p.cli.Stats(ctx)
		} else {
			ps = p.db.Stats()
		}
		healthy, lastErr, images, _ := p.snapshot()
		row := milret.PartitionStats{
			Name:      p.spec.Name,
			Addr:      p.spec.Addr,
			Healthy:   healthy && err == nil,
			LastError: lastErr,
			Images:    images,
		}
		if err != nil {
			row.LastError = err.Error()
			p.note(false, err)
		} else {
			row.Images = ps.Images
			p.mu.Lock()
			p.images = ps.Images
			p.mu.Unlock()
			st.Images += ps.Images
			st.Instances += ps.Instances
			if ps.Dim > 0 {
				st.Dim = ps.Dim
			}
			st.IndexBytes += ps.IndexBytes
			st.DeadImages += ps.DeadImages
			st.DeadInstances += ps.DeadInstances
			st.PendingMutations += ps.PendingMutations
			st.WALMutations += ps.WALMutations
			st.Shards = append(st.Shards, ps.Shards...)
			st.Prune.Screened += ps.Prune.Screened
			st.Prune.Admitted += ps.Prune.Admitted
			st.Prune.Rejected += ps.Prune.Rejected
		}
		st.Partitions = append(st.Partitions, row)
	}
	if c.cache != nil {
		cs := c.cache.Stats()
		st.Cache = &milret.CacheStats{
			CapacityBytes: cs.CapacityBytes,
			Bytes:         cs.Bytes,
			Entries:       cs.Entries,
			Hits:          cs.Hits,
			Misses:        cs.Misses,
			Coalesced:     cs.Coalesced,
			Bypassed:      cs.Bypassed,
			Evictions:     cs.Evictions,
			WarmLoaded:    cs.Loaded,
		}
	}
	return st
}

// --- server.Backend: image metadata ----------------------------------

// Images enumerates live images across all partitions, concatenated in
// topology order. Under "fail" an unreachable partition errors the
// listing; under "degrade" its images are silently absent.
func (c *Coordinator) Images() ([]server.ImageInfo, error) {
	infos := []server.ImageInfo{}
	for _, p := range c.parts {
		if !p.remote() {
			for _, id := range p.db.IDs() {
				label, _ := p.db.Label(id)
				infos = append(infos, server.ImageInfo{ID: id, Label: label})
			}
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), c.topo.RPCTimeout())
		entries, err := p.cli.List(ctx)
		cancel()
		if err != nil {
			p.note(false, err)
			if c.topo.PartialPolicy() == PartialFail {
				return nil, err
			}
			continue
		}
		p.note(true, nil)
		for _, e := range entries {
			infos = append(infos, server.ImageInfo{ID: e.ID, Label: e.Label})
		}
	}
	return infos, nil
}

// Label resolves one image's metadata from its owning partition.
func (c *Coordinator) Label(id string) (string, bool, error) {
	p := c.owner(id)
	if !p.remote() {
		label, ok := p.db.Label(id)
		return label, ok, nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.topo.RPCTimeout())
	defer cancel()
	resp, err := p.cli.Get(ctx, id)
	if err != nil {
		p.note(false, err)
		return "", false, err
	}
	p.note(true, nil)
	return resp.Label, resp.Found, nil
}

// --- server.Backend: mutations ---------------------------------------

// DeleteImage routes the delete to the image's owning partition. Remote
// acks mean the mutation is durable (the shard flushes before
// answering); local durability is the caller's Flush, exactly like a
// directly opened database.
func (c *Coordinator) DeleteImage(id string) error {
	return c.mutate(id, MutateRequest{Kind: MutDelete, ID: id})
}

// UpdateImage routes a relabel to the image's owning partition.
// Re-featurizing pixels through a coordinator is not supported — the
// image bytes would have to travel to the owner and retrain its index;
// send pixel updates to the owning shard's own /v1 surface instead.
func (c *Coordinator) UpdateImage(id, label string, img image.Image) error {
	if img != nil {
		return fmt.Errorf("remote: pixel updates are not supported through a coordinator; PUT to the owning shard directly")
	}
	return c.mutate(id, MutateRequest{Kind: MutLabel, ID: id, Label: label})
}

func (c *Coordinator) mutate(id string, req MutateRequest) error {
	p := c.owner(id)
	if !p.remote() {
		var err error
		switch req.Kind {
		case MutDelete:
			err = p.db.DeleteImage(id)
		case MutLabel:
			err = p.db.UpdateImage(id, req.Label, nil)
		}
		if err == nil {
			p.mu.Lock()
			p.images = p.db.Len()
			p.mu.Unlock()
		}
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.topo.RPCTimeout())
	defer cancel()
	resp, err := p.cli.Mutate(ctx, req)
	if err != nil {
		if !IsNotFound(err) {
			p.note(false, err)
		}
		return err
	}
	p.mu.Lock()
	p.healthy = true
	p.images = int(resp.Images)
	p.mu.Unlock()
	return nil
}

// Flush makes local partitions' acknowledged mutations durable. Remote
// partitions flushed before acking their mutations, so there is nothing
// left to wait for.
func (c *Coordinator) Flush() error {
	var first error
	for _, p := range c.parts {
		if p.db != nil {
			if err := p.db.Flush(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// --- server.Backend: training ----------------------------------------

// TrainCachedContext fetches each example bag from the partition that
// owns it and trains on the coordinator (through its own concept
// cache). Bags cross the wire as raw float bits, so the fetched dataset
// is bit-identical to the owners' and the trained concept equals one
// trained where the data lives. A missing example is a caller error; an
// unreachable owner is ErrUnavailable regardless of the partial-result
// policy — training on a partial example set would silently learn a
// different concept.
func (c *Coordinator) TrainCachedContext(ctx context.Context, positives, negatives []string, opts milret.TrainOptions) (*milret.Concept, milret.CacheOutcome, error) {
	pos, err := c.fetchBags(ctx, positives)
	if err != nil {
		return nil, milret.CacheDisabled, err
	}
	neg, err := c.fetchBags(ctx, negatives)
	if err != nil {
		return nil, milret.CacheDisabled, err
	}
	return milret.TrainBags(ctx, c.cache, pos, neg, opts)
}

// TrainManyContext trains one concept per spec through the cache.
func (c *Coordinator) TrainManyContext(ctx context.Context, specs []milret.QuerySpec) ([]*milret.Concept, []milret.CacheOutcome, error) {
	concepts := make([]*milret.Concept, len(specs))
	outcomes := make([]milret.CacheOutcome, len(specs))
	for i, sp := range specs {
		concept, out, err := c.TrainCachedContext(ctx, sp.Positives, sp.Negatives, sp.Opts)
		if err != nil {
			return nil, nil, fmt.Errorf("milret: query %d: %w", i, err)
		}
		concepts[i] = concept
		outcomes[i] = out
	}
	return concepts, outcomes, nil
}

// fetchBags resolves example IDs to their bags, grouping the lookups by
// owning partition (one Fetch RPC per remote owner, not per ID) and
// restoring input order.
func (c *Coordinator) fetchBags(ctx context.Context, ids []string) ([]milret.ExampleBag, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	byOwner := make(map[*partition][]string)
	for _, id := range ids {
		p := c.owner(id)
		byOwner[p] = append(byOwner[p], id)
	}
	found := make(map[string]milret.ExampleBag, len(ids))
	for p, group := range byOwner {
		if !p.remote() {
			for _, id := range group {
				eb, ok := p.db.ExampleBag(id)
				if !ok {
					return nil, fmt.Errorf("milret: unknown example image %q", id)
				}
				found[id] = eb
			}
			continue
		}
		bags, err := p.cli.Fetch(ctx, group)
		if err != nil {
			p.note(false, err)
			return nil, err
		}
		p.note(true, nil)
		for _, b := range bags {
			if !b.Found {
				return nil, fmt.Errorf("milret: unknown example image %q", b.ID)
			}
			found[b.ID] = milret.ExampleBag{ID: b.ID, Instances: b.Instances}
		}
	}
	out := make([]milret.ExampleBag, len(ids))
	for i, id := range ids {
		out[i] = found[id]
	}
	return out, nil
}

// --- server.Backend: retrieval ---------------------------------------

// partialAnswer applies the partial-result policy to a fan-out's
// failures: nil error means answer with what arrived (counting the
// degradation), non-nil means refuse.
func (c *Coordinator) partialAnswer(errs []error) error {
	var firstErr error
	for _, err := range errs {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr == nil {
		return nil
	}
	if c.topo.PartialPolicy() == PartialDegrade {
		c.degraded.Add(1)
		return nil
	}
	return firstErr
}

// mergeTopK concatenates per-partition result lists and keeps the
// global k best under the scan's own ordering (distance, then ID) —
// exactly the in-process cross-shard merge, so a distributed answer is
// bit-identical to a single-process one over the same data.
func mergeTopK(lists [][]milret.Result, k int) []milret.Result {
	var all []milret.Result
	for _, l := range lists {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Distance != all[j].Distance {
			return all[i].Distance < all[j].Distance
		}
		return all[i].ID < all[j].ID
	})
	if k >= 0 && len(all) > k {
		all = all[:k]
	}
	return all
}

// Retrieve fans a top-k scan to every partition concurrently and merges
// the global k best. A shared cutoff links the scans: local partitions
// hold the live handle, remote requests carry its current value as a
// seed, and every remote response's k-th-best distance tightens it for
// whichever scans are still running. Staleness only weakens pruning —
// see the package comment for why this never changes the answer.
func (c *Coordinator) Retrieve(ctx context.Context, concept *milret.Concept, k int, exclude []string, recall float64) ([]milret.Result, error) {
	shared := index.NewCutoff()
	geo := Geometry{Point: concept.Point(), Weights: concept.Weights()}
	lists := make([][]milret.Result, len(c.parts))
	errs := make([]error, len(c.parts))
	var wg sync.WaitGroup
	for i, p := range c.parts {
		wg.Add(1)
		go func(i int, p *partition) {
			defer wg.Done()
			if !p.remote() {
				lists[i] = p.db.RetrieveExcluding(concept, k, exclude,
					milret.WithRecall(recall), milret.WithSharedCutoff(shared))
				return
			}
			resp, err := p.cli.TopK(ctx, TopKRequest{
				K:       k,
				Recall:  recall,
				Seed:    shared.Load(),
				Concept: geo,
				Exclude: exclude,
			})
			if err != nil {
				p.note(false, err)
				errs[i] = err
				return
			}
			p.note(true, nil)
			shared.Tighten(resp.Cutoff)
			lists[i] = resp.Results
		}(i, p)
	}
	wg.Wait()
	if err := c.partialAnswer(errs); err != nil {
		return nil, err
	}
	return mergeTopK(lists, k), nil
}

// RetrieveBatch fans a multi-concept scan to every partition and merges
// each concept's lists independently.
func (c *Coordinator) RetrieveBatch(ctx context.Context, concepts []*milret.Concept, k int, exclude []string, recall float64) ([][]milret.Result, error) {
	if len(concepts) == 0 {
		return nil, nil
	}
	geos := make([]Geometry, len(concepts))
	for i, concept := range concepts {
		geos[i] = Geometry{Point: concept.Point(), Weights: concept.Weights()}
	}
	perPart := make([][][]milret.Result, len(c.parts))
	errs := make([]error, len(c.parts))
	var wg sync.WaitGroup
	for i, p := range c.parts {
		wg.Add(1)
		go func(i int, p *partition) {
			defer wg.Done()
			if !p.remote() {
				lists, err := p.db.RetrieveMany(concepts, k, exclude, milret.WithRecall(recall))
				if err != nil {
					errs[i] = err
					return
				}
				perPart[i] = lists
				return
			}
			resp, err := p.cli.MultiTopK(ctx, MultiTopKRequest{
				K:        k,
				Recall:   recall,
				Concepts: geos,
				Exclude:  exclude,
			})
			if err != nil {
				p.note(false, err)
				errs[i] = err
				return
			}
			p.note(true, nil)
			perPart[i] = resp.Lists
		}(i, p)
	}
	wg.Wait()
	if err := c.partialAnswer(errs); err != nil {
		return nil, err
	}
	out := make([][]milret.Result, len(concepts))
	for ci := range concepts {
		lists := make([][]milret.Result, 0, len(c.parts))
		for pi := range c.parts {
			if perPart[pi] != nil && ci < len(perPart[pi]) {
				lists = append(lists, perPart[pi][ci])
			}
		}
		out[ci] = mergeTopK(lists, k)
	}
	return out, nil
}

// RankAll ranks every live image against the concept: the exhaustive
// per-partition rankings merged under the same (distance, ID) order.
// Unlike Retrieve there is no cutoff to share — every partition scores
// everything — so the merge is a plain ordered concatenation.
func (c *Coordinator) RankAll(ctx context.Context, concept *milret.Concept, exclude []string) ([]milret.Result, error) {
	geo := Geometry{Point: concept.Point(), Weights: concept.Weights()}
	lists := make([][]milret.Result, len(c.parts))
	errs := make([]error, len(c.parts))
	var wg sync.WaitGroup
	for i, p := range c.parts {
		wg.Add(1)
		go func(i int, p *partition) {
			defer wg.Done()
			if !p.remote() {
				lists[i] = p.db.RankAllExcluding(concept, exclude)
				return
			}
			results, err := p.cli.Rank(ctx, RankRequest{Concept: geo, Exclude: exclude})
			if err != nil {
				p.note(false, err)
				errs[i] = err
				return
			}
			p.note(true, nil)
			lists[i] = results
		}(i, p)
	}
	wg.Wait()
	if err := c.partialAnswer(errs); err != nil {
		return nil, err
	}
	return mergeTopK(lists, -1), nil
}
