// Package remote is the distribution tier: it serves one shard's scans
// behind a binary RPC (ShardServer), speaks that RPC with
// timeout/retry/backoff (Client), and merges a topology of local and
// remote partitions back into one logical database (Coordinator, which
// implements the HTTP server's Backend).
//
// The merge protocol is the in-process one, stretched across processes.
// Every scan worker's published k-th-best root is an upper bound on the
// global k-th best (it is the k-th best of a candidate subset), so the
// shared cutoff stays an upper bound no matter how partitions join: the
// coordinator seeds each remote request with the bound known at send
// time, every response carries the partition's own final bound back,
// and a stale or missing contribution only weakens pruning — never
// correctness. Concatenating per-partition top-k lists and re-sorting
// by (distance, ID) is therefore bit-identical to scanning the union
// in one process (property-tested in remote_test.go).
//
// Wire format ("MILRETR1", CRC-covered like the store formats): one
// request frame up, one response frame down, over a plain HTTP POST —
//
//	magic[8] | op u8 | bodyLen u32 LE | body | crc32(op|bodyLen|body)
//
// Bodies are fixed-layout little-endian (see the per-op types below);
// a response echoes the request op on success or carries opError with a
// machine-readable code. A torn or bit-flipped frame fails the CRC and
// surfaces as a transport error, which the client retries (idempotent
// ops only) and the coordinator's partial-result policy absorbs.
package remote

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"milret"
)

// Magic identifies a shard RPC frame, versioned like the store formats
// (MILRETX1, MILRETW1, MILRETS1, MILRETC1).
const Magic = "MILRETR1"

// Frame ops. Requests carry exactly one; responses echo it or carry
// opError.
const (
	opError     byte = 0 // response only: body = code u8 | msg string
	opPing      byte = 1 // health probe: images + verification state
	opStats     byte = 2 // full milret.Stats (JSON body)
	opTopK      byte = 3 // single-concept top-k with cutoff piggyback
	opMultiTopK byte = 4 // batched multi-concept top-k
	opRank      byte = 5 // exhaustive ranking
	opFetch     byte = 6 // example bags by ID (for coordinator training)
	opMutate    byte = 7 // delete / label update, flushed before ack
	opList      byte = 8 // all live image IDs + labels
	opGet       byte = 9 // one image's label
)

// maxFrameBody bounds a frame body so a corrupt length field cannot ask
// the receiver to allocate unbounded memory before the CRC is checked.
const maxFrameBody = 1 << 28

// Remote error codes carried by opError frames.
const (
	// ErrCodeInternal is a shard-side failure evaluating a well-formed
	// request.
	ErrCodeInternal uint8 = 1
	// ErrCodeNotFound means the addressed image is not live on the shard.
	ErrCodeNotFound uint8 = 2
	// ErrCodeBadRequest means the request cannot be evaluated as stated
	// (bad geometry, unknown op, malformed body).
	ErrCodeBadRequest uint8 = 3
)

// RemoteError is a failure reported by the shard server itself — the
// RPC round-trip succeeded, the request did not. It is deliberately
// distinct from transport failures, which wrap milret.ErrUnavailable:
// a RemoteError must not be retried or absorbed by the partial-result
// policy (the peer is healthy; the request is wrong).
type RemoteError struct {
	Code uint8
	Msg  string
}

func (e *RemoteError) Error() string { return e.Msg }

// IsNotFound reports whether err is a shard-side not-found verdict.
func IsNotFound(err error) bool {
	re, ok := err.(*RemoteError)
	return ok && re.Code == ErrCodeNotFound
}

// WriteFrame writes one CRC-covered frame.
func WriteFrame(w io.Writer, op byte, body []byte) error {
	if len(body) > maxFrameBody {
		return fmt.Errorf("remote: frame body %d bytes exceeds limit %d", len(body), maxFrameBody)
	}
	hdr := make([]byte, 0, len(Magic)+5)
	hdr = append(hdr, Magic...)
	hdr = append(hdr, op)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(body)))
	crc := crc32.NewIEEE()
	crc.Write(hdr[len(Magic):])
	crc.Write(body)
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if _, err := w.Write(body); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, crc.Sum32())
}

// ReadFrame reads and integrity-checks one frame. Any deviation —
// wrong magic, oversized body, truncation, CRC mismatch — is an error;
// the caller treats it as a transport failure, not a protocol answer.
func ReadFrame(r io.Reader) (op byte, body []byte, err error) {
	hdr := make([]byte, len(Magic)+5)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, nil, fmt.Errorf("remote: short frame header: %w", err)
	}
	if string(hdr[:len(Magic)]) != Magic {
		return 0, nil, fmt.Errorf("remote: bad frame magic %q", hdr[:len(Magic)])
	}
	op = hdr[len(Magic)]
	n := binary.LittleEndian.Uint32(hdr[len(Magic)+1:])
	if n > maxFrameBody {
		return 0, nil, fmt.Errorf("remote: frame body %d bytes exceeds limit %d", n, maxFrameBody)
	}
	body = make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, fmt.Errorf("remote: torn frame body: %w", err)
	}
	var sum [4]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return 0, nil, fmt.Errorf("remote: torn frame checksum: %w", err)
	}
	crc := crc32.NewIEEE()
	crc.Write(hdr[len(Magic):])
	crc.Write(body)
	if crc.Sum32() != binary.LittleEndian.Uint32(sum[:]) {
		return 0, nil, fmt.Errorf("remote: frame checksum mismatch")
	}
	return op, body, nil
}

// encodeError builds an opError body.
func encodeError(code uint8, msg string) []byte {
	var w wbuf
	w.u8(code)
	w.str(msg)
	return w.b
}

// decodeError parses an opError body; a malformed one still yields a
// usable error.
func decodeError(body []byte) error {
	r := rbuf{b: body}
	code := r.u8()
	msg := r.str()
	if r.done() != nil || msg == "" {
		return &RemoteError{Code: ErrCodeInternal, Msg: "remote: malformed error frame"}
	}
	return &RemoteError{Code: code, Msg: msg}
}

// wbuf is a little-endian append-only body encoder.
type wbuf struct{ b []byte }

func (w *wbuf) u8(v byte)     { w.b = append(w.b, v) }
func (w *wbuf) u32(v uint32)  { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *wbuf) u64(v uint64)  { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *wbuf) f64(v float64) { w.u64(math.Float64bits(v)) }
func (w *wbuf) str(s string) {
	w.u32(uint32(len(s)))
	w.b = append(w.b, s...)
}
func (w *wbuf) f64s(v []float64) {
	w.u32(uint32(len(v)))
	for _, x := range v {
		w.f64(x)
	}
}
func (w *wbuf) strs(v []string) {
	w.u32(uint32(len(v)))
	for _, s := range v {
		w.str(s)
	}
}

// rbuf is the matching decoder: it latches the first failure and lets
// the caller check once at the end, and every count is validated
// against the bytes actually present before allocating.
type rbuf struct {
	b   []byte
	off int
	err error
}

func (r *rbuf) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("remote: truncated frame body at offset %d", r.off)
	}
}

func (r *rbuf) u8() byte {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *rbuf) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *rbuf) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *rbuf) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *rbuf) str() string {
	n := int(r.u32())
	if r.err != nil || n < 0 || r.off+n > len(r.b) {
		r.fail()
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

func (r *rbuf) f64s() []float64 {
	n := int(r.u32())
	if r.err != nil || n < 0 || r.off+8*n > len(r.b) {
		r.fail()
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.f64()
	}
	return out
}

func (r *rbuf) strs() []string {
	n := int(r.u32())
	if r.err != nil || n < 0 || r.off+4*n > len(r.b) {
		r.fail()
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = r.str()
	}
	return out
}

func (r *rbuf) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("remote: %d trailing bytes in frame body", len(r.b)-r.off)
	}
	return nil
}

// Geometry is one concept's scan geometry on the wire (the output of
// Concept.Point/Concept.Weights — floats travel as raw bits, so the
// receiving scan uses the training process's exact values).
type Geometry struct {
	Point   []float64
	Weights []float64
}

func (w *wbuf) geometry(g Geometry) {
	w.f64s(g.Point)
	w.f64s(g.Weights)
}

func (r *rbuf) geometry() Geometry {
	return Geometry{Point: r.f64s(), Weights: r.f64s()}
}

func (w *wbuf) results(rs []milret.Result) {
	w.u32(uint32(len(rs)))
	for _, res := range rs {
		w.str(res.ID)
		w.str(res.Label)
		w.f64(res.Distance)
	}
}

func (r *rbuf) results() []milret.Result {
	n := int(r.u32())
	if r.err != nil || n < 0 || r.off+9*n > len(r.b) {
		r.fail()
		return nil
	}
	out := make([]milret.Result, n)
	for i := range out {
		out[i] = milret.Result{ID: r.str(), Label: r.str(), Distance: r.f64()}
	}
	return out
}

// TopKRequest asks a partition for its k best matches. Seed carries the
// coordinator's tightest known cutoff at send time so the partition's
// scan starts pruning immediately; +Inf (or 0) seeds nothing.
type TopKRequest struct {
	K       int
	Recall  float64
	Seed    float64
	Concept Geometry
	Exclude []string
}

func (q TopKRequest) encode() []byte {
	var w wbuf
	w.u32(uint32(q.K))
	w.f64(q.Recall)
	w.f64(q.Seed)
	w.geometry(q.Concept)
	w.strs(q.Exclude)
	return w.b
}

func decodeTopKRequest(body []byte) (TopKRequest, error) {
	r := rbuf{b: body}
	q := TopKRequest{
		K:       int(r.u32()),
		Recall:  r.f64(),
		Seed:    r.f64(),
		Concept: r.geometry(),
		Exclude: r.strs(),
	}
	return q, r.done()
}

// TopKResponse carries a partition's top-k plus the bound its scan
// finished with — the k-th best distance when the partition produced a
// full k results, +Inf otherwise (a partition with fewer than k live
// candidates bounds nothing).
type TopKResponse struct {
	Cutoff  float64
	Results []milret.Result
}

func (p TopKResponse) encode() []byte {
	var w wbuf
	w.f64(p.Cutoff)
	w.results(p.Results)
	return w.b
}

func decodeTopKResponse(body []byte) (TopKResponse, error) {
	r := rbuf{b: body}
	p := TopKResponse{Cutoff: r.f64(), Results: r.results()}
	return p, r.done()
}

// MultiTopKRequest is the batched form: B concepts, one shard pass.
// No live cutoff piggybacks (the batched scan arms per-query cutoffs
// from its own heaps, exactly like the in-process MultiTopK).
type MultiTopKRequest struct {
	K        int
	Recall   float64
	Concepts []Geometry
	Exclude  []string
}

func (q MultiTopKRequest) encode() []byte {
	var w wbuf
	w.u32(uint32(q.K))
	w.f64(q.Recall)
	w.u32(uint32(len(q.Concepts)))
	for _, g := range q.Concepts {
		w.geometry(g)
	}
	w.strs(q.Exclude)
	return w.b
}

func decodeMultiTopKRequest(body []byte) (MultiTopKRequest, error) {
	r := rbuf{b: body}
	q := MultiTopKRequest{K: int(r.u32()), Recall: r.f64()}
	n := int(r.u32())
	if r.err == nil && n >= 0 && r.off+8*n <= len(r.b) {
		q.Concepts = make([]Geometry, n)
		for i := range q.Concepts {
			q.Concepts[i] = r.geometry()
		}
	} else {
		r.fail()
	}
	q.Exclude = r.strs()
	return q, r.done()
}

// MultiTopKResponse carries one ranking per requested concept, in
// order.
type MultiTopKResponse struct {
	Lists [][]milret.Result
}

func (p MultiTopKResponse) encode() []byte {
	var w wbuf
	w.u32(uint32(len(p.Lists)))
	for _, rs := range p.Lists {
		w.results(rs)
	}
	return w.b
}

func decodeMultiTopKResponse(body []byte) (MultiTopKResponse, error) {
	r := rbuf{b: body}
	n := int(r.u32())
	var p MultiTopKResponse
	if r.err == nil && n >= 0 && r.off+4*n <= len(r.b) {
		p.Lists = make([][]milret.Result, n)
		for i := range p.Lists {
			p.Lists[i] = r.results()
		}
	} else {
		r.fail()
	}
	return p, r.done()
}

// RankRequest asks for a partition's full ascending ranking.
type RankRequest struct {
	Concept Geometry
	Exclude []string
}

func (q RankRequest) encode() []byte {
	var w wbuf
	w.geometry(q.Concept)
	w.strs(q.Exclude)
	return w.b
}

func decodeRankRequest(body []byte) (RankRequest, error) {
	r := rbuf{b: body}
	q := RankRequest{Concept: r.geometry(), Exclude: r.strs()}
	return q, r.done()
}

// FetchRequest asks the owning partition for example bags by ID.
type FetchRequest struct {
	IDs []string
}

func (q FetchRequest) encode() []byte {
	var w wbuf
	w.strs(q.IDs)
	return w.b
}

func decodeFetchRequest(body []byte) (FetchRequest, error) {
	r := rbuf{b: body}
	q := FetchRequest{IDs: r.strs()}
	return q, r.done()
}

// FetchedBag is one fetched example: Found is false when the partition
// does not hold the ID live (the coordinator reports it like a local
// unknown-example error).
type FetchedBag struct {
	ID        string
	Found     bool
	Instances [][]float64
}

// FetchResponse answers a FetchRequest, parallel to its IDs.
type FetchResponse struct {
	Bags []FetchedBag
}

func (p FetchResponse) encode() []byte {
	var w wbuf
	w.u32(uint32(len(p.Bags)))
	for _, b := range p.Bags {
		w.str(b.ID)
		if !b.Found {
			w.u8(0)
			continue
		}
		w.u8(1)
		w.u32(uint32(len(b.Instances)))
		for _, row := range b.Instances {
			w.f64s(row)
		}
	}
	return w.b
}

func decodeFetchResponse(body []byte) (FetchResponse, error) {
	r := rbuf{b: body}
	n := int(r.u32())
	var p FetchResponse
	if r.err != nil || n < 0 || r.off+5*n > len(r.b) {
		r.fail()
		return p, r.done()
	}
	p.Bags = make([]FetchedBag, n)
	for i := range p.Bags {
		p.Bags[i].ID = r.str()
		if r.u8() == 0 {
			continue
		}
		p.Bags[i].Found = true
		ni := int(r.u32())
		if r.err != nil || ni < 0 || r.off+4*ni > len(r.b) {
			r.fail()
			return p, r.done()
		}
		p.Bags[i].Instances = make([][]float64, ni)
		for j := range p.Bags[i].Instances {
			p.Bags[i].Instances[j] = r.f64s()
		}
	}
	return p, r.done()
}

// Mutation kinds for MutateRequest.
const (
	// MutDelete tombstones the image.
	MutDelete uint8 = 1
	// MutLabel replaces the image's label, keeping its pixels/bag.
	MutLabel uint8 = 2
)

// MutateRequest applies one routed mutation to the owning partition.
// The shard server flushes before acknowledging, so an acked mutation
// is durable there — the same contract as the local HTTP surface.
type MutateRequest struct {
	Kind  uint8
	ID    string
	Label string
}

func (q MutateRequest) encode() []byte {
	var w wbuf
	w.u8(q.Kind)
	w.str(q.ID)
	w.str(q.Label)
	return w.b
}

func decodeMutateRequest(body []byte) (MutateRequest, error) {
	r := rbuf{b: body}
	q := MutateRequest{Kind: r.u8(), ID: r.str(), Label: r.str()}
	return q, r.done()
}

// MutateResponse acknowledges a mutation with the partition's new live
// image count (keeps the coordinator's Len() current without a probe).
type MutateResponse struct {
	Images uint64
}

func (p MutateResponse) encode() []byte {
	var w wbuf
	w.u64(p.Images)
	return w.b
}

func decodeMutateResponse(body []byte) (MutateResponse, error) {
	r := rbuf{b: body}
	p := MutateResponse{Images: r.u64()}
	return p, r.done()
}

// PingResponse answers a health probe.
type PingResponse struct {
	Images uint64
	// Verify is the partition's milret.VerifyStatus.
	Verify uint8
}

func (p PingResponse) encode() []byte {
	var w wbuf
	w.u64(p.Images)
	w.u8(p.Verify)
	return w.b
}

func decodePingResponse(body []byte) (PingResponse, error) {
	r := rbuf{b: body}
	p := PingResponse{Images: r.u64(), Verify: r.u8()}
	return p, r.done()
}

// ListEntry is one live image in a ListResponse.
type ListEntry struct {
	ID    string
	Label string
}

// ListResponse enumerates a partition's live images in its insertion
// order.
type ListResponse struct {
	Entries []ListEntry
}

func (p ListResponse) encode() []byte {
	var w wbuf
	w.u32(uint32(len(p.Entries)))
	for _, e := range p.Entries {
		w.str(e.ID)
		w.str(e.Label)
	}
	return w.b
}

func decodeListResponse(body []byte) (ListResponse, error) {
	r := rbuf{b: body}
	n := int(r.u32())
	var p ListResponse
	if r.err != nil || n < 0 || r.off+8*n > len(r.b) {
		r.fail()
		return p, r.done()
	}
	p.Entries = make([]ListEntry, n)
	for i := range p.Entries {
		p.Entries[i] = ListEntry{ID: r.str(), Label: r.str()}
	}
	return p, r.done()
}

// GetRequest asks the owning partition for one image's metadata.
type GetRequest struct {
	ID string
}

func (q GetRequest) encode() []byte {
	var w wbuf
	w.str(q.ID)
	return w.b
}

func decodeGetRequest(body []byte) (GetRequest, error) {
	r := rbuf{b: body}
	q := GetRequest{ID: r.str()}
	return q, r.done()
}

// GetResponse answers a GetRequest.
type GetResponse struct {
	Found bool
	Label string
}

func (p GetResponse) encode() []byte {
	var w wbuf
	if p.Found {
		w.u8(1)
	} else {
		w.u8(0)
	}
	w.str(p.Label)
	return w.b
}

func decodeGetResponse(body []byte) (GetResponse, error) {
	r := rbuf{b: body}
	p := GetResponse{Found: r.u8() == 1, Label: r.str()}
	return p, r.done()
}

// encodeStats / decodeStats carry the full stats tree as JSON inside
// the binary frame: the structure is deep, evolving, and read by
// humans via /v1/stats anyway, so a fixed binary layout would buy
// nothing but drift.
func encodeStats(st milret.Stats) ([]byte, error) { return json.Marshal(st) }

func decodeStats(body []byte) (milret.Stats, error) {
	var st milret.Stats
	err := json.Unmarshal(body, &st)
	return st, err
}
