package remote

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"milret"
	"milret/internal/store"
	"milret/internal/synth"
)

// fastOpts keeps featurization cheap: resolution 6 / 9 regions is the
// smallest supported geometry and the tests only care about determinism,
// not retrieval quality.
var fastOpts = milret.Options{Resolution: 6, Regions: 9}

// buildStore featurizes a small object corpus into a flat store at
// dir/src.milret and returns its path plus the image IDs in insertion
// order.
func buildStore(t *testing.T, dir string) (string, []string) {
	t.Helper()
	db, err := milret.NewDatabase(fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, it := range synth.ObjectsN(9, 2) {
		if err := db.AddImage(it.ID, it.Label, it.Image); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, it.ID)
	}
	src := filepath.Join(dir, "src.milret")
	if err := db.Save(src); err != nil {
		t.Fatal(err)
	}
	db.Close()
	return src, ids
}

// cluster is a 4-partition topology over a resharded copy of one store:
// two partitions opened locally by the coordinator, two served by real
// shard servers over HTTP, plus an in-process reference database holding
// the identical data.
type cluster struct {
	ref      *milret.Database
	coord    *Coordinator
	topo     *Topology
	shardDBs []*milret.Database
	servers  []*httptest.Server
	ids      []string
}

func (cl *cluster) close() {
	cl.coord.Close()
	for _, s := range cl.servers {
		if s != nil {
			s.Close()
		}
	}
	for _, db := range cl.shardDBs {
		db.Close()
	}
	cl.ref.Close()
}

// startCluster builds the store, reshards it 4 ways and wires the
// topology: partitions 0-1 local paths, partitions 2-3 remote servers.
func startCluster(t *testing.T, partial string) *cluster {
	t.Helper()
	dir := t.TempDir()
	src, ids := buildStore(t, dir)
	dst := filepath.Join(dir, "sharded.milret")
	if err := milret.Reshard(src, dst, 4); err != nil {
		t.Fatal(err)
	}
	ref, err := milret.LoadDatabase(src, milret.Options{VerifyOnLoad: true})
	if err != nil {
		t.Fatal(err)
	}
	cl := &cluster{ref: ref, ids: ids}
	t.Cleanup(cl.close)

	parts := make([]PartitionSpec, 4)
	for i := 0; i < 4; i++ {
		p := store.ShardPath(dst, i)
		if i < 2 {
			parts[i] = PartitionSpec{Name: names4[i], Path: p}
			continue
		}
		sdb, err := milret.LoadDatabase(p, milret.Options{VerifyOnLoad: true})
		if err != nil {
			t.Fatal(err)
		}
		cl.shardDBs = append(cl.shardDBs, sdb)
		mux := http.NewServeMux()
		mux.Handle(RPCPath, NewShardServer(sdb))
		srv := httptest.NewServer(mux)
		cl.servers = append(cl.servers, srv)
		parts[i] = PartitionSpec{Name: names4[i], Addr: srv.URL}
	}
	cl.topo = &Topology{Partitions: parts, Partial: partial}
	cl.coord, err = NewCoordinator(cl.topo, CoordinatorOptions{
		ConceptCacheMB: 8,
		Local:          milret.Options{VerifyOnLoad: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

var names4 = []string{"p0", "p1", "p2", "p3"}

// trainRef trains a concept on the reference database from a
// deterministic example split.
func trainRef(t *testing.T, cl *cluster, seed int) (*milret.Concept, []string, []string) {
	t.Helper()
	pos := []string{cl.ids[seed%len(cl.ids)], cl.ids[(seed+7)%len(cl.ids)]}
	neg := []string{cl.ids[(seed+19)%len(cl.ids)]}
	c, err := cl.ref.Train(pos, neg, milret.TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return c, pos, neg
}

func wantIdentical(t *testing.T, what string, got, want []milret.Result) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		limit := len(got)
		if len(want) > limit {
			limit = len(want)
		}
		for i := 0; i < limit; i++ {
			var g, w milret.Result
			if i < len(got) {
				g = got[i]
			}
			if i < len(want) {
				w = want[i]
			}
			if g != w {
				t.Fatalf("%s: rank %d differs:\n  distributed: %+v\n  in-process:  %+v", what, i, g, w)
			}
		}
		t.Fatalf("%s: lengths differ: distributed %d, in-process %d", what, len(got), len(want))
	}
}

// TestCoordinatorTopKBitIdentical is the tentpole property: a 4-way
// distributed top-k (mixed local/remote partitions, live shared cutoff)
// returns the exact result list — IDs, labels and float bits — of a
// single-process scan over the same data, across concepts, depths and
// pruning tiers.
func TestCoordinatorTopKBitIdentical(t *testing.T) {
	cl := startCluster(t, PartialFail)
	ctx := context.Background()
	for seed := 0; seed < 5; seed++ {
		concept, pos, neg := trainRef(t, cl, seed)
		exclude := append(append([]string{}, pos...), neg...)
		for _, k := range []int{1, 5, 12, cl.ref.Len(), cl.ref.Len() + 10} {
			for _, recall := range []float64{0, 1.0} {
				got, err := cl.coord.Retrieve(ctx, concept, k, exclude, recall)
				if err != nil {
					t.Fatalf("seed %d k %d recall %g: %v", seed, k, recall, err)
				}
				want := cl.ref.RetrieveExcluding(concept, k, exclude, milret.WithRecall(recall))
				wantIdentical(t, "topk", got, want)
			}
		}
	}
}

// TestCoordinatorRankBitIdentical checks the exhaustive ranking path
// (opRank, no cutoff) against the in-process full ranking.
func TestCoordinatorRankBitIdentical(t *testing.T) {
	cl := startCluster(t, PartialFail)
	concept, pos, neg := trainRef(t, cl, 3)
	exclude := append(append([]string{}, pos...), neg...)
	got, err := cl.coord.RankAll(context.Background(), concept, exclude)
	if err != nil {
		t.Fatal(err)
	}
	wantIdentical(t, "rank", got, cl.ref.RankAllExcluding(concept, exclude))
	if len(got) != cl.ref.Len()-len(exclude) {
		t.Fatalf("ranking covers %d images, want %d", len(got), cl.ref.Len()-len(exclude))
	}
}

// TestCoordinatorBatchBitIdentical checks the batched multi-concept
// path against the in-process batched scan.
func TestCoordinatorBatchBitIdentical(t *testing.T) {
	cl := startCluster(t, PartialFail)
	var concepts []*milret.Concept
	var exclude []string
	for seed := 0; seed < 3; seed++ {
		c, pos, neg := trainRef(t, cl, seed)
		concepts = append(concepts, c)
		exclude = append(exclude, pos...)
		exclude = append(exclude, neg...)
	}
	got, err := cl.coord.RetrieveBatch(context.Background(), concepts, 9, exclude, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := cl.ref.RetrieveMany(concepts, 9, exclude)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("batch answered %d lists, want %d", len(got), len(want))
	}
	for i := range want {
		wantIdentical(t, "batch list", got[i], want[i])
	}
}

// TestCoordinatorTrainingBitIdentical checks that a concept trained on
// the coordinator — examples fetched over the wire from the partitions
// that own them — carries the exact float bits of one trained where the
// data lives.
func TestCoordinatorTrainingBitIdentical(t *testing.T) {
	cl := startCluster(t, PartialFail)
	pos := []string{cl.ids[2], cl.ids[11], cl.ids[23]}
	neg := []string{cl.ids[5], cl.ids[17]}
	want, err := cl.ref.Train(pos, neg, milret.TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, outcome, err := cl.coord.TrainCachedContext(context.Background(), pos, neg, milret.TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Point(), want.Point()) || !reflect.DeepEqual(got.Weights(), want.Weights()) {
		t.Fatal("coordinator-trained concept differs from reference")
	}
	// The coordinator trains through its own cache: the same examples
	// again must hit, with the identical concept.
	again, outcome2, err := cl.coord.TrainCachedContext(context.Background(), pos, neg, milret.TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if outcome2 == outcome && outcome2 != milret.CacheHit {
		t.Errorf("second training outcome = %v, want a cache hit (first was %v)", outcome2, outcome)
	}
	if !reflect.DeepEqual(again.Point(), want.Point()) {
		t.Fatal("cached concept differs")
	}
	// Unknown examples are a caller error, not a transport failure.
	if _, _, err := cl.coord.TrainCachedContext(context.Background(), []string{"no-such-image"}, nil, milret.TrainOptions{}); err == nil {
		t.Fatal("training on an unknown example succeeded")
	}
}

// TestCoordinatorMutations routes deletes and relabels by placement,
// mirrors them onto the reference and re-checks bit-identity including
// tombstones.
func TestCoordinatorMutations(t *testing.T) {
	cl := startCluster(t, PartialFail)
	ctx := context.Background()
	concept, pos, neg := trainRef(t, cl, 1)
	exclude := append(append([]string{}, pos...), neg...)

	// Delete a handful of images spread across partitions (skipping the
	// training examples so the concept stays valid on the reference).
	skip := map[string]bool{}
	for _, id := range exclude {
		skip[id] = true
	}
	deleted := 0
	for _, id := range cl.ids {
		if skip[id] || deleted >= 6 {
			continue
		}
		if err := cl.coord.DeleteImage(id); err != nil {
			t.Fatalf("delete %s: %v", id, err)
		}
		if err := cl.ref.DeleteImage(id); err != nil {
			t.Fatalf("reference delete %s: %v", id, err)
		}
		deleted++
	}
	if cl.coord.Len() != cl.ref.Len() {
		t.Fatalf("coordinator Len %d, reference %d", cl.coord.Len(), cl.ref.Len())
	}

	// A relabel must land on the owner and read back through Label.
	target := pos[0]
	if err := cl.coord.UpdateImage(target, "relabelled", nil); err != nil {
		t.Fatal(err)
	}
	if err := cl.ref.UpdateImage(target, "relabelled", nil); err != nil {
		t.Fatal(err)
	}
	if label, ok, err := cl.coord.Label(target); err != nil || !ok || label != "relabelled" {
		t.Fatalf("Label(%s) = %q, %v, %v", target, label, ok, err)
	}
	if _, ok, err := cl.coord.Label("no-such-image"); err != nil || ok {
		t.Fatalf("Label(missing) = %v, %v", ok, err)
	}

	// Deleting a deleted image is a not-found verdict, not a transport
	// failure.
	if err := cl.coord.DeleteImage(cl.ids[0]); err == nil {
		t.Fatal("double delete succeeded")
	} else if ok := IsNotFound(err); !ok && cl.coord.owner(cl.ids[0]).remote() {
		t.Fatalf("double delete on remote partition: %v (want not-found verdict)", err)
	}

	// Post-mutation scans stay bit-identical, tombstones and all.
	got, err := cl.coord.Retrieve(ctx, concept, 10, exclude, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantIdentical(t, "post-mutation topk", got, cl.ref.RetrieveExcluding(concept, 10, exclude))

	// The image listing covers exactly the live set.
	infos, err := cl.coord.Images()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != cl.ref.Len() {
		t.Fatalf("Images lists %d, reference holds %d", len(infos), cl.ref.Len())
	}
}

// TestCoordinatorStats checks the merged stats tree and the partition
// health block.
func TestCoordinatorStats(t *testing.T) {
	cl := startCluster(t, PartialDegrade)
	st := cl.coord.Stats()
	refSt := cl.ref.Stats()
	if st.Images != refSt.Images || st.Instances != refSt.Instances || st.Dim != refSt.Dim {
		t.Fatalf("merged totals (%d images, %d instances, dim %d) != reference (%d, %d, %d)",
			st.Images, st.Instances, st.Dim, refSt.Images, refSt.Instances, refSt.Dim)
	}
	if st.PartialPolicy != PartialDegrade {
		t.Errorf("PartialPolicy = %q", st.PartialPolicy)
	}
	if len(st.Partitions) != 4 {
		t.Fatalf("Partitions = %d rows", len(st.Partitions))
	}
	sum := 0
	for i, p := range st.Partitions {
		if p.Name != names4[i] {
			t.Errorf("partition %d name %q", i, p.Name)
		}
		if !p.Healthy {
			t.Errorf("partition %q unhealthy: %s", p.Name, p.LastError)
		}
		sum += p.Images
	}
	if sum != refSt.Images {
		t.Errorf("partition image counts sum to %d, want %d", sum, refSt.Images)
	}
	if st.Cache == nil {
		t.Error("coordinator cache stats missing")
	}
	if status, err := cl.coord.Verification(); status != milret.VerifyVerified || err != nil {
		t.Errorf("Verification = %v, %v", status, err)
	}
}

// TestSharedCutoffValues sanity-checks the piggybacked bound the shard
// returns: the k-th best distance on a full list, +Inf on a short one.
func TestSharedCutoffValues(t *testing.T) {
	cl := startCluster(t, PartialFail)
	concept, pos, neg := trainRef(t, cl, 2)
	cli := NewClient(cl.servers[0].URL, 0, 0, 0)
	geo := Geometry{Point: concept.Point(), Weights: concept.Weights()}
	exclude := append(append([]string{}, pos...), neg...)

	resp, err := cli.TopK(context.Background(), TopKRequest{K: 3, Concept: geo, Exclude: exclude})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("shard returned %d results", len(resp.Results))
	}
	if resp.Cutoff != resp.Results[2].Distance {
		t.Errorf("cutoff %v != 3rd distance %v", resp.Cutoff, resp.Results[2].Distance)
	}
	short, err := cli.TopK(context.Background(), TopKRequest{K: 10000, Concept: geo})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(short.Cutoff, 1) {
		t.Errorf("short list cutoff %v, want +Inf", short.Cutoff)
	}
}

// TestClientBareHostPort pins the address normalization: a topology
// may name partitions as bare "host:port" and the client must still
// form a valid RPC URL (http assumed).
func TestClientBareHostPort(t *testing.T) {
	cl := startCluster(t, PartialFail)
	bare := strings.TrimPrefix(cl.servers[0].URL, "http://")
	cli := NewClient(bare, 0, 0, 0)
	if cli.Addr() != "http://"+bare {
		t.Errorf("Addr() = %q, want %q", cli.Addr(), "http://"+bare)
	}
	if _, err := cli.Ping(context.Background()); err != nil {
		t.Fatalf("Ping over bare host:port addr: %v", err)
	}
}

// TestReshardedClusterMatchesDirectShards confirms the placement
// contract: every image the coordinator routes is actually live on the
// partition the hash names.
func TestReshardedClusterMatchesDirectShards(t *testing.T) {
	cl := startCluster(t, PartialFail)
	for _, id := range cl.ids {
		label, ok, err := cl.coord.Label(id)
		if err != nil || !ok {
			t.Fatalf("Label(%s) via owner: %v, %v", id, ok, err)
		}
		wantLabel, _ := cl.ref.Label(id)
		if label != wantLabel {
			t.Errorf("Label(%s) = %q, want %q", id, label, wantLabel)
		}
	}
}
