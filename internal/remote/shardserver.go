package remote

import (
	"fmt"
	"math"
	"net/http"

	"milret"
)

// ShardServer serves one partition's database over the shard RPC: a
// single POST endpoint that reads one request frame and writes one
// response frame. It is mounted alongside the JSON surface by
// `milret shard-serve` (conventionally at /rpc), so a shard host stays
// inspectable with curl while coordinators speak the binary protocol.
type ShardServer struct {
	db *milret.Database
	// ReadOnly rejects opMutate with ErrCodeBadRequest, mirroring the
	// JSON surface's -readonly mode.
	ReadOnly bool
}

// NewShardServer returns a shard RPC handler over db.
func NewShardServer(db *milret.Database) *ShardServer {
	return &ShardServer{db: db}
}

func (s *ShardServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "shard RPC requires POST", http.StatusMethodNotAllowed)
		return
	}
	op, body, err := ReadFrame(r.Body)
	if err != nil {
		// The request frame never parsed; there is no protocol state to
		// answer within. Plain 400 — the client reports it as transport.
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	rop, rbody := s.dispatch(op, body)
	// The response frame is self-checking (CRC); HTTP status stays 200
	// even for opError so proxies do not re-interpret shard verdicts.
	if err := WriteFrame(w, rop, rbody); err != nil {
		// The response writer failed mid-frame — the client sees a torn
		// frame and handles it as a transport error. Nothing to add.
		return
	}
}

// dispatch evaluates one request and returns the response frame's op
// and body.
func (s *ShardServer) dispatch(op byte, body []byte) (byte, []byte) {
	fail := func(code uint8, format string, args ...any) (byte, []byte) {
		return opError, encodeError(code, fmt.Sprintf(format, args...))
	}
	switch op {
	case opPing:
		status, _ := s.db.Verification()
		return opPing, PingResponse{
			Images: uint64(s.db.Len()),
			Verify: uint8(status),
		}.encode()

	case opStats:
		b, err := encodeStats(s.db.Stats())
		if err != nil {
			return fail(ErrCodeInternal, "remote: encode stats: %v", err)
		}
		return opStats, b

	case opTopK:
		q, err := decodeTopKRequest(body)
		if err != nil {
			return fail(ErrCodeBadRequest, "%v", err)
		}
		c, err := milret.NewConcept(q.Concept.Point, q.Concept.Weights)
		if err != nil {
			return fail(ErrCodeBadRequest, "%v", err)
		}
		results := s.db.RetrieveExcluding(c, q.K, q.Exclude,
			milret.WithRecall(q.Recall), milret.WithCutoffSeed(q.Seed))
		// A full k results bounds the global k-th best by this
		// partition's k-th best; fewer than k bound nothing.
		cutoff := math.Inf(1)
		if len(results) == q.K && q.K > 0 {
			cutoff = results[q.K-1].Distance
		}
		return opTopK, TopKResponse{Cutoff: cutoff, Results: results}.encode()

	case opMultiTopK:
		q, err := decodeMultiTopKRequest(body)
		if err != nil {
			return fail(ErrCodeBadRequest, "%v", err)
		}
		concepts := make([]*milret.Concept, len(q.Concepts))
		for i, g := range q.Concepts {
			if concepts[i], err = milret.NewConcept(g.Point, g.Weights); err != nil {
				return fail(ErrCodeBadRequest, "concept %d: %v", i, err)
			}
		}
		lists, err := s.db.RetrieveMany(concepts, q.K, q.Exclude, milret.WithRecall(q.Recall))
		if err != nil {
			return fail(ErrCodeBadRequest, "%v", err)
		}
		return opMultiTopK, MultiTopKResponse{Lists: lists}.encode()

	case opRank:
		q, err := decodeRankRequest(body)
		if err != nil {
			return fail(ErrCodeBadRequest, "%v", err)
		}
		c, err := milret.NewConcept(q.Concept.Point, q.Concept.Weights)
		if err != nil {
			return fail(ErrCodeBadRequest, "%v", err)
		}
		return opRank, TopKResponse{
			Cutoff:  math.Inf(1),
			Results: s.db.RankAllExcluding(c, q.Exclude),
		}.encode()

	case opFetch:
		q, err := decodeFetchRequest(body)
		if err != nil {
			return fail(ErrCodeBadRequest, "%v", err)
		}
		resp := FetchResponse{Bags: make([]FetchedBag, len(q.IDs))}
		for i, id := range q.IDs {
			eb, ok := s.db.ExampleBag(id)
			resp.Bags[i] = FetchedBag{ID: id, Found: ok, Instances: eb.Instances}
		}
		return opFetch, resp.encode()

	case opMutate:
		if s.ReadOnly {
			return fail(ErrCodeBadRequest, "remote: shard is read-only")
		}
		q, err := decodeMutateRequest(body)
		if err != nil {
			return fail(ErrCodeBadRequest, "%v", err)
		}
		switch q.Kind {
		case MutDelete:
			err = s.db.DeleteImage(q.ID)
		case MutLabel:
			err = s.db.UpdateImage(q.ID, q.Label, nil)
		default:
			return fail(ErrCodeBadRequest, "remote: unknown mutation kind %d", q.Kind)
		}
		if err != nil {
			return fail(ErrCodeNotFound, "%v", err)
		}
		// Durable before acked: the coordinator does not retry mutations
		// (they are not idempotent against concurrent writers), so the
		// ack must mean what the local surface's ack means.
		if err := s.db.Flush(); err != nil {
			return fail(ErrCodeInternal, "remote: flush after mutation: %v", err)
		}
		return opMutate, MutateResponse{Images: uint64(s.db.Len())}.encode()

	case opList:
		ids := s.db.IDs()
		resp := ListResponse{Entries: make([]ListEntry, len(ids))}
		for i, id := range ids {
			label, _ := s.db.Label(id)
			resp.Entries[i] = ListEntry{ID: id, Label: label}
		}
		return opList, resp.encode()

	case opGet:
		q, err := decodeGetRequest(body)
		if err != nil {
			return fail(ErrCodeBadRequest, "%v", err)
		}
		label, ok := s.db.Label(q.ID)
		return opGet, GetResponse{Found: ok, Label: label}.encode()
	}
	return fail(ErrCodeBadRequest, "remote: unknown op %d", op)
}
