package remote

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// Partial-result policies (Topology.Partial).
const (
	// PartialFail answers queries only when every partition contributed:
	// a down partition turns queries into ErrUnavailable (HTTP 503).
	// The default — correct-or-loud.
	PartialFail = "fail"
	// PartialDegrade answers from the reachable partitions and counts
	// the degraded queries in /v1/stats. Results may silently miss the
	// down partitions' images.
	PartialDegrade = "degrade"
)

// PartitionSpec names one partition of a topology: exactly one of Path
// (a store path the coordinator opens itself) or Addr (a shard server's
// base URL) must be set.
type PartitionSpec struct {
	Name string `json:"name"`
	Path string `json:"path,omitempty"`
	Addr string `json:"addr,omitempty"`
}

// Remote reports whether the partition is served over the RPC.
func (p PartitionSpec) Remote() bool { return p.Addr != "" }

// Topology is the coordinator's configuration file (milret serve
// -topology): the ordered partition list plus fleet-wide tuning. The
// partition ORDER IS THE PLACEMENT: image IDs route to partition
// retrieval.ShardIndexFor(id, len(Partitions)), so the list must match
// the shard count and order the store was (re)sharded into — partition
// i holds shard i. Reordering or resizing the list without resharding
// strands every image on a partition that no longer owns it.
type Topology struct {
	Partitions []PartitionSpec `json:"partitions"`
	// Partial selects the partial-result policy: "fail" (default) or
	// "degrade".
	Partial string `json:"partial,omitempty"`
	// RPCTimeoutMS bounds each RPC attempt (default 5000).
	RPCTimeoutMS int `json:"rpc_timeout_ms,omitempty"`
	// Retries re-sends failed idempotent RPCs with exponential backoff
	// (default 1 retry; mutations never retry).
	Retries int `json:"retries,omitempty"`
	// BackoffMS is the first retry's delay, doubling per attempt
	// (default 50).
	BackoffMS int `json:"backoff_ms,omitempty"`
	// HealthIntervalMS paces the background replica health probes
	// (default 2000).
	HealthIntervalMS int `json:"health_interval_ms,omitempty"`
}

// RPCTimeout returns the configured per-attempt bound.
func (t *Topology) RPCTimeout() time.Duration {
	if t.RPCTimeoutMS <= 0 {
		return DefaultRPCTimeout
	}
	return time.Duration(t.RPCTimeoutMS) * time.Millisecond
}

// Backoff returns the configured first-retry delay.
func (t *Topology) Backoff() time.Duration {
	if t.BackoffMS <= 0 {
		return DefaultBackoff
	}
	return time.Duration(t.BackoffMS) * time.Millisecond
}

// HealthInterval returns the configured probe period.
func (t *Topology) HealthInterval() time.Duration {
	if t.HealthIntervalMS <= 0 {
		return 2 * time.Second
	}
	return time.Duration(t.HealthIntervalMS) * time.Millisecond
}

// Validate checks structural invariants common to every consumer.
func (t *Topology) Validate() error {
	if len(t.Partitions) == 0 {
		return fmt.Errorf("remote: topology has no partitions")
	}
	seen := make(map[string]bool, len(t.Partitions))
	for i, p := range t.Partitions {
		if p.Name == "" {
			return fmt.Errorf("remote: partition %d has no name", i)
		}
		if seen[p.Name] {
			return fmt.Errorf("remote: duplicate partition name %q", p.Name)
		}
		seen[p.Name] = true
		if (p.Path == "") == (p.Addr == "") {
			return fmt.Errorf("remote: partition %q must set exactly one of path or addr", p.Name)
		}
	}
	switch t.Partial {
	case "", PartialFail, PartialDegrade:
	default:
		return fmt.Errorf("remote: unknown partial policy %q (want %q or %q)", t.Partial, PartialFail, PartialDegrade)
	}
	return nil
}

// PartialPolicy returns the effective policy with the default applied.
func (t *Topology) PartialPolicy() string {
	if t.Partial == "" {
		return PartialFail
	}
	return t.Partial
}

// LoadTopology reads and validates a topology file.
func LoadTopology(path string) (*Topology, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("remote: read topology: %w", err)
	}
	var t Topology
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("remote: parse topology %s: %w", path, err)
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return &t, nil
}
