package remote

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"milret"
)

func TestFrameRoundTrip(t *testing.T) {
	bodies := [][]byte{nil, {}, {0x42}, bytes.Repeat([]byte{0xAB}, 4096)}
	for _, body := range bodies {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, opTopK, body); err != nil {
			t.Fatalf("WriteFrame(%d bytes): %v", len(body), err)
		}
		op, got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame(%d bytes): %v", len(body), err)
		}
		if op != opTopK {
			t.Errorf("op = %d, want %d", op, opTopK)
		}
		if !bytes.Equal(got, body) {
			t.Errorf("body mismatch: %d bytes read, %d written", len(got), len(body))
		}
	}
}

func TestFrameRejectsCorruption(t *testing.T) {
	var ref bytes.Buffer
	if err := WriteFrame(&ref, opRank, []byte("hello, shard")); err != nil {
		t.Fatal(err)
	}
	frame := ref.Bytes()

	// Every single-bit flip anywhere in the frame must be detected: the
	// magic check catches the prefix, the CRC everything after it.
	for i := 0; i < len(frame); i++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), frame...)
			mut[i] ^= 1 << bit
			if _, _, err := ReadFrame(bytes.NewReader(mut)); err == nil {
				t.Fatalf("bit flip at byte %d bit %d went undetected", i, bit)
			}
		}
	}

	// Every truncation must surface as an error, not a short body.
	for n := 0; n < len(frame); n++ {
		if _, _, err := ReadFrame(bytes.NewReader(frame[:n])); err == nil {
			t.Fatalf("truncation to %d of %d bytes went undetected", n, len(frame))
		}
	}
}

func TestFrameRejectsOversizedLength(t *testing.T) {
	// A frame whose length field claims more than maxFrameBody must be
	// rejected before any allocation happens.
	var buf bytes.Buffer
	buf.WriteString(Magic)
	buf.WriteByte(opPing)
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // ~4GiB body
	if _, _, err := ReadFrame(&buf); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized length accepted: %v", err)
	}
}

func TestTopKRequestRoundTrip(t *testing.T) {
	q := TopKRequest{
		K:      7,
		Recall: 0.93,
		Seed:   1.25e-3,
		Concept: Geometry{
			Point:   []float64{0.1, math.Pi, -3, math.Inf(1)},
			Weights: []float64{1, 0.5, 0.25, 0},
		},
		Exclude: []string{"a", "b-with-longer-id", ""},
	}
	got, err := decodeTopKRequest(q.encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, q) {
		t.Errorf("round trip: got %+v, want %+v", got, q)
	}
}

func TestTopKResponseRoundTrip(t *testing.T) {
	p := TopKResponse{
		Cutoff: 0.125,
		Results: []milret.Result{
			{ID: "x", Label: "cat", Distance: 0.0625},
			{ID: "y", Label: "", Distance: 0.125},
		},
	}
	got, err := decodeTopKResponse(p.encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Errorf("round trip: got %+v, want %+v", got, p)
	}
	// The +Inf cutoff (no bound) must survive as raw bits.
	inf := TopKResponse{Cutoff: math.Inf(1)}
	got, err = decodeTopKResponse(inf.encode())
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got.Cutoff, 1) {
		t.Errorf("+Inf cutoff round-tripped to %v", got.Cutoff)
	}
}

func TestFetchResponseRoundTrip(t *testing.T) {
	p := FetchResponse{Bags: []FetchedBag{
		{ID: "hit", Found: true, Instances: [][]float64{{1, 2, 3}, {4, 5, 6}}},
		{ID: "miss", Found: false},
		{ID: "empty-rows", Found: true, Instances: [][]float64{}},
	}}
	got, err := decodeFetchResponse(p.encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Bags) != 3 || !got.Bags[0].Found || got.Bags[1].Found {
		t.Fatalf("round trip: got %+v", got)
	}
	if !reflect.DeepEqual(got.Bags[0].Instances, p.Bags[0].Instances) {
		t.Errorf("instances: got %v, want %v", got.Bags[0].Instances, p.Bags[0].Instances)
	}
}

func TestMultiTopKRoundTrip(t *testing.T) {
	q := MultiTopKRequest{
		K:      3,
		Recall: 1.0,
		Concepts: []Geometry{
			{Point: []float64{1}, Weights: []float64{2}},
			{Point: []float64{3, 4}, Weights: []float64{5, 6}},
		},
		Exclude: []string{"z"},
	}
	gotQ, err := decodeMultiTopKRequest(q.encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotQ, q) {
		t.Errorf("request round trip: got %+v, want %+v", gotQ, q)
	}
	p := MultiTopKResponse{Lists: [][]milret.Result{
		{{ID: "a", Distance: 1}},
		nil,
	}}
	gotP, err := decodeMultiTopKResponse(p.encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(gotP.Lists) != 2 || len(gotP.Lists[0]) != 1 || gotP.Lists[0][0].ID != "a" {
		t.Errorf("response round trip: got %+v", gotP)
	}
}

func TestSmallBodyRoundTrips(t *testing.T) {
	if got, err := decodeMutateRequest(MutateRequest{Kind: MutLabel, ID: "i", Label: "l"}.encode()); err != nil || got.Kind != MutLabel || got.ID != "i" || got.Label != "l" {
		t.Errorf("mutate request: %+v, %v", got, err)
	}
	if got, err := decodeMutateResponse(MutateResponse{Images: 42}.encode()); err != nil || got.Images != 42 {
		t.Errorf("mutate response: %+v, %v", got, err)
	}
	if got, err := decodePingResponse(PingResponse{Images: 7, Verify: 2}.encode()); err != nil || got.Images != 7 || got.Verify != 2 {
		t.Errorf("ping response: %+v, %v", got, err)
	}
	if got, err := decodeGetResponse(GetResponse{Found: true, Label: "x"}.encode()); err != nil || !got.Found || got.Label != "x" {
		t.Errorf("get response: %+v, %v", got, err)
	}
	if got, err := decodeListResponse(ListResponse{Entries: []ListEntry{{ID: "a", Label: "b"}}}.encode()); err != nil || len(got.Entries) != 1 || got.Entries[0].Label != "b" {
		t.Errorf("list response: %+v, %v", got, err)
	}
	if got, err := decodeRankRequest(RankRequest{Concept: Geometry{Point: []float64{1}, Weights: []float64{1}}, Exclude: nil}.encode()); err != nil || len(got.Concept.Point) != 1 {
		t.Errorf("rank request: %+v, %v", got, err)
	}
}

func TestDecodeRejectsTruncatedBodies(t *testing.T) {
	// Chopping any suffix off an encoded body must error, never yield a
	// silently short struct.
	full := TopKRequest{
		K:       3,
		Concept: Geometry{Point: []float64{1, 2}, Weights: []float64{3, 4}},
		Exclude: []string{"e1", "e2"},
	}.encode()
	for n := 0; n < len(full); n++ {
		if _, err := decodeTopKRequest(full[:n]); err == nil {
			t.Fatalf("truncated body (%d of %d bytes) decoded without error", n, len(full))
		}
	}
	// Trailing garbage must also be rejected.
	if _, err := decodeTopKRequest(append(append([]byte(nil), full...), 0xFF)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestErrorFrameRoundTrip(t *testing.T) {
	err := decodeError(encodeError(ErrCodeNotFound, "no such image"))
	re, ok := err.(*RemoteError)
	if !ok || re.Code != ErrCodeNotFound || re.Msg != "no such image" {
		t.Fatalf("round trip: %#v", err)
	}
	if !IsNotFound(err) {
		t.Error("IsNotFound(not-found verdict) = false")
	}
	if IsNotFound(decodeError(encodeError(ErrCodeInternal, "boom"))) {
		t.Error("IsNotFound(internal verdict) = true")
	}
	// A malformed error frame still yields a usable error.
	if e := decodeError([]byte{1}); e == nil || e.Error() == "" {
		t.Errorf("malformed error frame: %v", e)
	}
}
