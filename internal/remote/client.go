package remote

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"milret"
)

// Client speaks the shard RPC to one partition with per-attempt
// timeouts and, for idempotent ops, bounded retry with exponential
// backoff. Transport-level failures — connection refused, timeout, torn
// or corrupt frames — wrap milret.ErrUnavailable so the coordinator's
// partial-result policy can recognize them; shard-side verdicts arrive
// as *RemoteError and are never retried (the peer answered; asking
// again would not change its mind).
type Client struct {
	addr    string
	rpcURL  string
	hc      *http.Client
	timeout time.Duration
	retries int
	backoff time.Duration
}

// RPCPath is where a shard server mounts its RPC endpoint.
const RPCPath = "/rpc"

// Client tuning defaults, overridable per topology (see Topology).
const (
	DefaultRPCTimeout = 5 * time.Second
	DefaultRetries    = 1
	DefaultBackoff    = 50 * time.Millisecond
)

// NewClient returns a client for the shard server at base URL addr
// (e.g. "http://10.0.0.7:8081"; a bare "host:port" is taken as http).
// timeout bounds each attempt; retries is the number of *re*-tries
// after a failed idempotent attempt; backoff is the first retry's
// delay, doubling per attempt.
func NewClient(addr string, timeout time.Duration, retries int, backoff time.Duration) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	if timeout <= 0 {
		timeout = DefaultRPCTimeout
	}
	if retries < 0 {
		retries = 0
	}
	if backoff <= 0 {
		backoff = DefaultBackoff
	}
	return &Client{
		addr:    addr,
		rpcURL:  addr + RPCPath,
		hc:      &http.Client{},
		timeout: timeout,
		retries: retries,
		backoff: backoff,
	}
}

// Addr returns the partition's base URL.
func (c *Client) Addr() string { return c.addr }

// unavailable tags a transport failure with the partition address and
// the ErrUnavailable sentinel.
func (c *Client) unavailable(err error) error {
	return fmt.Errorf("remote: partition %s: %v: %w", c.addr, err, milret.ErrUnavailable)
}

// roundTrip performs one framed request/response exchange, retrying
// transport failures when idempotent.
func (c *Client) roundTrip(ctx context.Context, op byte, body []byte, idempotent bool) (byte, []byte, error) {
	attempts := 1
	if idempotent {
		attempts += c.retries
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			delay := c.backoff << (i - 1)
			select {
			case <-ctx.Done():
				return 0, nil, c.unavailable(ctx.Err())
			case <-time.After(delay):
			}
		}
		rop, rbody, err := c.attempt(ctx, op, body)
		if err == nil {
			return rop, rbody, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break // the caller gave up; retrying races a dead context
		}
	}
	return 0, nil, c.unavailable(lastErr)
}

// attempt is one timed exchange.
func (c *Client) attempt(ctx context.Context, op byte, body []byte) (byte, []byte, error) {
	actx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, op, body); err != nil {
		return 0, nil, err
	}
	req, err := http.NewRequestWithContext(actx, http.MethodPost, c.rpcURL, &buf)
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return 0, nil, fmt.Errorf("http %d", resp.StatusCode)
	}
	return ReadFrame(resp.Body)
}

// call runs one exchange and unwraps the response envelope: an opError
// frame becomes a *RemoteError, an op mismatch a transport failure.
func (c *Client) call(ctx context.Context, op byte, body []byte, idempotent bool) ([]byte, error) {
	rop, rbody, err := c.roundTrip(ctx, op, body, idempotent)
	if err != nil {
		return nil, err
	}
	switch rop {
	case op:
		return rbody, nil
	case opError:
		return nil, decodeError(rbody)
	}
	return nil, c.unavailable(fmt.Errorf("response op %d for request op %d", rop, op))
}

// Ping probes the partition's health.
func (c *Client) Ping(ctx context.Context) (PingResponse, error) {
	body, err := c.call(ctx, opPing, nil, true)
	if err != nil {
		return PingResponse{}, err
	}
	p, err := decodePingResponse(body)
	if err != nil {
		return PingResponse{}, c.unavailable(err)
	}
	return p, nil
}

// Stats fetches the partition's full stats tree.
func (c *Client) Stats(ctx context.Context) (milret.Stats, error) {
	body, err := c.call(ctx, opStats, nil, true)
	if err != nil {
		return milret.Stats{}, err
	}
	st, err := decodeStats(body)
	if err != nil {
		return milret.Stats{}, c.unavailable(err)
	}
	return st, nil
}

// TopK runs a single-concept top-k scan on the partition.
func (c *Client) TopK(ctx context.Context, q TopKRequest) (TopKResponse, error) {
	body, err := c.call(ctx, opTopK, q.encode(), true)
	if err != nil {
		return TopKResponse{}, err
	}
	p, err := decodeTopKResponse(body)
	if err != nil {
		return TopKResponse{}, c.unavailable(err)
	}
	return p, nil
}

// MultiTopK runs a batched multi-concept top-k scan on the partition.
func (c *Client) MultiTopK(ctx context.Context, q MultiTopKRequest) (MultiTopKResponse, error) {
	body, err := c.call(ctx, opMultiTopK, q.encode(), true)
	if err != nil {
		return MultiTopKResponse{}, err
	}
	p, err := decodeMultiTopKResponse(body)
	if err != nil {
		return MultiTopKResponse{}, c.unavailable(err)
	}
	return p, nil
}

// Rank runs an exhaustive ranking on the partition.
func (c *Client) Rank(ctx context.Context, q RankRequest) ([]milret.Result, error) {
	body, err := c.call(ctx, opRank, q.encode(), true)
	if err != nil {
		return nil, err
	}
	p, err := decodeTopKResponse(body)
	if err != nil {
		return nil, c.unavailable(err)
	}
	return p.Results, nil
}

// Fetch retrieves example bags by ID from the partition.
func (c *Client) Fetch(ctx context.Context, ids []string) ([]FetchedBag, error) {
	body, err := c.call(ctx, opFetch, FetchRequest{IDs: ids}.encode(), true)
	if err != nil {
		return nil, err
	}
	p, err := decodeFetchResponse(body)
	if err != nil {
		return nil, c.unavailable(err)
	}
	if len(p.Bags) != len(ids) {
		return nil, c.unavailable(fmt.Errorf("fetch answered %d bags for %d ids", len(p.Bags), len(ids)))
	}
	return p.Bags, nil
}

// Mutate applies one routed mutation. Mutations are NOT retried: a
// timed-out delete may have committed, and blind re-send would mask
// that ambiguity instead of surfacing it to the caller.
func (c *Client) Mutate(ctx context.Context, q MutateRequest) (MutateResponse, error) {
	body, err := c.call(ctx, opMutate, q.encode(), false)
	if err != nil {
		return MutateResponse{}, err
	}
	p, err := decodeMutateResponse(body)
	if err != nil {
		return MutateResponse{}, c.unavailable(err)
	}
	return p, nil
}

// List enumerates the partition's live images.
func (c *Client) List(ctx context.Context) ([]ListEntry, error) {
	body, err := c.call(ctx, opList, nil, true)
	if err != nil {
		return nil, err
	}
	p, err := decodeListResponse(body)
	if err != nil {
		return nil, c.unavailable(err)
	}
	return p.Entries, nil
}

// Get fetches one image's metadata from the partition.
func (c *Client) Get(ctx context.Context, id string) (GetResponse, error) {
	body, err := c.call(ctx, opGet, GetRequest{ID: id}.encode(), true)
	if err != nil {
		return GetResponse{}, err
	}
	p, err := decodeGetResponse(body)
	if err != nil {
		return GetResponse{}, c.unavailable(err)
	}
	return p, nil
}
