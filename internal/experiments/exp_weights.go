package experiments

import (
	"fmt"

	"milret/internal/core"
	"milret/internal/feature"
)

// weightModeRow captures one weight-control scheme for the comparison
// figures.
type weightModeRow struct {
	label string
	mode  core.WeightMode
	beta  float64
}

func standardModes(beta float64) []weightModeRow {
	return []weightModeRow{
		{"original DD", core.Original, 0},
		{"identical weights", core.Identical, 0},
		{fmt.Sprintf("inequality β=%.2f", beta), core.SumConstraint, beta},
	}
}

// weightModeComparison runs the full §4.1 protocol once per weight scheme
// on one category and tabulates the ranking summaries — the substance of
// Figures 4-8 through 4-14.
func weightModeComparison(cfg Config, id, kind, target string, rows []weightModeRow) ([]Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		ID:     id,
		Title:  fmt.Sprintf("Retrieving %s images: weight-control schemes (test-set ranking)", target),
		Header: []string{"scheme", "AP", "prec@recall.3-.4", "P@10", "R@50"},
	}
	for _, row := range rows {
		res, err := runProtocol(cfg, kind, target, feature.Options{},
			cfg.trainConfig(row.mode, row.beta))
		if err != nil {
			return nil, err
		}
		ap, window, p10, r50 := summarize(res.TestRanking, target)
		t.AddRow(row.label, ap, window, p10, r50)
	}
	return []Table{t}, nil
}

// Fig48 compares weight schemes retrieving waterfalls (paper Fig 4-8).
func Fig48(cfg Config) ([]Table, error) {
	return weightModeComparison(cfg, "Fig48", "scenes", "waterfall", standardModes(0.5))
}

// Fig49 compares weight schemes retrieving fields (paper Fig 4-9).
func Fig49(cfg Config) ([]Table, error) {
	return weightModeComparison(cfg, "Fig49", "scenes", "field", standardModes(0.5))
}

// Fig410 compares weight schemes retrieving sunsets/sunrises (paper
// Fig 4-10).
func Fig410(cfg Config) ([]Table, error) {
	return weightModeComparison(cfg, "Fig410", "scenes", "sunset", standardModes(0.5))
}

// Fig411 compares weight schemes retrieving cars (paper Fig 4-11).
func Fig411(cfg Config) ([]Table, error) {
	return weightModeComparison(cfg, "Fig411", "objects", "car", standardModes(0.5))
}

// Fig412 compares weight schemes retrieving pants (paper Fig 4-12).
func Fig412(cfg Config) ([]Table, error) {
	return weightModeComparison(cfg, "Fig412", "objects", "pants", standardModes(0.5))
}

// Fig413 compares weight schemes retrieving airplanes (paper Fig 4-13).
func Fig413(cfg Config) ([]Table, error) {
	return weightModeComparison(cfg, "Fig413", "objects", "airplane", standardModes(0.5))
}

// Fig414 repeats the car comparison with β=0.25, where the paper found the
// inequality constraint recovers (paper Fig 4-14).
func Fig414(cfg Config) ([]Table, error) {
	rows := append(standardModes(0.5), weightModeRow{"inequality β=0.25", core.SumConstraint, 0.25})
	return weightModeComparison(cfg, "Fig414", "objects", "car", rows)
}

// Fig415_417 sweeps β in the inequality constraint on the sunset task
// (paper Figs 4-15/4-16/4-17). As β→0 the curve should approach original
// DD; as β→1 it should approach identical weights.
func Fig415_417(cfg Config) ([]Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		ID:     "Fig415_417",
		Title:  "Changing β in the inequality constraint (sunset task)",
		Header: []string{"scheme", "AP", "prec@recall.3-.4", "P@10"},
		Notes:  "β→0 approaches original DD; β→1 approaches identical weights (§4.2.1)",
	}
	run := func(label string, mode core.WeightMode, beta float64) error {
		res, err := runProtocol(cfg, "scenes", "sunset", feature.Options{},
			cfg.trainConfig(mode, beta))
		if err != nil {
			return err
		}
		ap, window, p10, _ := summarize(res.TestRanking, "sunset")
		t.AddRow(label, ap, window, p10)
		return nil
	}
	if err := run("original DD", core.Original, 0); err != nil {
		return nil, err
	}
	for _, beta := range []float64{0.0, 0.1, 0.3, 0.4, 0.5, 0.6, 0.7, 0.9, 1.0} {
		if err := run(fmt.Sprintf("inequality β=%.1f", beta), core.SumConstraint, beta); err != nil {
			return nil, err
		}
	}
	if err := run("identical weights", core.Identical, 0); err != nil {
		return nil, err
	}
	return []Table{t}, nil
}

// betaEndpointGap quantifies the §4.2.1 footnote: at β=0 and β=1 the curves
// need not agree exactly with original DD / identical weights because the
// minimization algorithms differ. Exposed for tests.
func betaEndpointGap(t Table) (lo, hi float64, err error) {
	var apOriginal, apBeta0, apIdentical, apBeta1 float64
	found := 0
	for _, row := range t.Rows {
		var v float64
		if _, e := fmt.Sscanf(row[1], "%f", &v); e != nil {
			return 0, 0, e
		}
		switch row[0] {
		case "original DD":
			apOriginal = v
			found++
		case "inequality β=0.0":
			apBeta0 = v
			found++
		case "identical weights":
			apIdentical = v
			found++
		case "inequality β=1.0":
			apBeta1 = v
			found++
		}
	}
	if found != 4 {
		return 0, 0, fmt.Errorf("experiments: β sweep table missing endpoint rows")
	}
	return apBeta0 - apOriginal, apBeta1 - apIdentical, nil
}
