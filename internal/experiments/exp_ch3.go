package experiments

import (
	"fmt"

	"milret/internal/core"
	"milret/internal/eval"
	"milret/internal/feature"
	"milret/internal/gray"
	"milret/internal/mil"
	"milret/internal/region"
	"milret/internal/synth"
)

// Table31 reproduces Table 3.1: correlation coefficients of sample object
// image pairs after smoothing and sampling at h=10. The paper's pairs of
// similar objects score high (0.65–0.84) and its dissimilar pairs low
// (≈0.1–0.22); the same contrast must hold here.
func Table31(cfg Config) ([]Table, error) {
	cfg = cfg.withDefaults()
	objects := synth.ObjectsN(cfg.Seed, 2)
	img := map[string]*gray.Image{}
	for _, it := range objects {
		img[it.ID] = gray.FromImage(it.Image)
	}
	pick := func(cat string, i int) *gray.Image {
		return img[fmt.Sprintf("object-%s-%02d", cat, i)]
	}
	pairs := []struct {
		name string
		a, b *gray.Image
	}{
		{"car vs car", pick("car", 0), pick("car", 1)},
		{"camera vs camera", pick("camera", 0), pick("camera", 1)},
		{"pants vs pants", pick("pants", 0), pick("pants", 1)},
		{"hammer vs hammer", pick("hammer", 0), pick("hammer", 1)},
		{"car vs pants", pick("car", 0), pick("pants", 0)},
		{"camera vs hammer", pick("camera", 0), pick("hammer", 0)},
	}
	t := Table{
		ID:     "Table31",
		Title:  "Correlation coefficients of sample image pairs (h=10)",
		Header: []string{"pair", "kind", "corr"},
		Notes:  "paper: similar pairs 0.652-0.838, dissimilar pairs 0.110-0.224",
	}
	for i, p := range pairs {
		kind := "similar"
		if i >= 4 {
			kind = "dissimilar"
		}
		c, err := gray.CorrSampled(p.a, p.b, 10)
		if err != nil {
			return nil, err
		}
		t.AddRow(p.name, kind, c)
	}
	return []Table{t}, nil
}

// Fig33_34 reproduces the Figures 3-3/3-4 demonstration: two complex images
// whose whole-picture correlation is low while the correlation of the right
// pair of sub-regions is high — the motivation for region selection (§3.2).
func Fig33_34(cfg Config) ([]Table, error) {
	cfg = cfg.withDefaults()
	// Two waterfall scenes: same concept, different composition.
	scenes := synth.ScenesN(cfg.Seed, 2)
	var a, b *gray.Image
	for _, it := range scenes {
		switch it.ID {
		case "scene-waterfall-000":
			a = gray.FromImage(it.Image)
		case "scene-waterfall-001":
			b = gray.FromImage(it.Image)
		}
	}
	whole, err := gray.CorrSampled(a, b, 10)
	if err != nil {
		return nil, err
	}
	itA, itB := gray.NewIntegral(a), gray.NewIntegral(b)
	best, bestA, bestB := -1.0, "", ""
	for _, ra := range region.MustSet(region.Default) {
		ax0, ay0, ax1, ay1 := ra.Pixels(a.W, a.H)
		sa, err := gray.SmoothSampleRect(itA, ax0, ay0, ax1, ay1, 10)
		if err != nil {
			return nil, err
		}
		for _, rb := range region.MustSet(region.Default) {
			bx0, by0, bx1, by1 := rb.Pixels(b.W, b.H)
			sb, err := gray.SmoothSampleRect(itB, bx0, by0, bx1, by1, 10)
			if err != nil {
				return nil, err
			}
			if c := gray.Corr(sa, sb); c > best {
				best, bestA, bestB = c, ra.Name, rb.Name
			}
		}
	}
	t := Table{
		ID:     "Fig33_34",
		Title:  "Whole-image vs best region-pair correlation on complex images",
		Header: []string{"comparison", "corr"},
		Notes:  "paper: whole images 0.118, marked regions 0.674",
	}
	t.AddRow("whole image vs whole image", whole)
	t.AddRow(fmt.Sprintf("best region pair (%s vs %s)", bestA, bestB), best)
	return []Table{t}, nil
}

// Fig37_39 reproduces the DD-output comparison of Figures 3-7/3-8/3-9: the
// learned weight vectors under the original DD, identical weights and the
// β=0.5 inequality constraint on the same waterfall task. The headline
// behaviour: original DD leaves only a few large weights (most near zero);
// the constraint keeps at least half of the total weight mass; identical
// weights are all exactly one.
func Fig37_39(cfg Config) ([]Table, error) {
	cfg = cfg.withDefaults()
	pool, _, err := splitCorpus(cfg, "scenes", feature.Options{})
	if err != nil {
		return nil, err
	}
	// 5 positive waterfalls + 5 negatives, as in Figure 3-6.
	ds := &mil.Dataset{}
	for _, it := range pool.Items() {
		if it.Label == "waterfall" && len(ds.Positive) < 5 {
			ds.Positive = append(ds.Positive, it.Bag)
		}
		if it.Label != "waterfall" && len(ds.Negative) < 5 {
			ds.Negative = append(ds.Negative, it.Bag)
		}
	}
	t := Table{
		ID:     "Fig37_39",
		Title:  "DD output weight statistics under the three weight schemes (waterfall task)",
		Header: []string{"mode", "w_min", "w_mean", "w_max", "frac<0.05", "sum(w)/n", "-logDD"},
		Notes:  "paper: original DD pushes most weights near zero (Fig 3-7); identical weights all 1 (Fig 3-8); inequality beta=0.5 keeps half the mass (Fig 3-9)",
	}
	for _, m := range []struct {
		mode core.WeightMode
		beta float64
	}{
		{core.Original, 0},
		{core.Identical, 0},
		{core.SumConstraint, 0.5},
	} {
		concept, err := core.Train(ds, cfg.trainConfig(m.mode, m.beta))
		if err != nil {
			return nil, err
		}
		w := concept.Weights
		minW, _ := w.Min()
		maxW, _ := w.Max()
		nearZero := 0
		for _, v := range w {
			if v < 0.05 {
				nearZero++
			}
		}
		t.AddRow(m.mode.String(), minW, w.Mean(), maxW,
			float64(nearZero)/float64(len(w)), w.Sum()/float64(len(w)), concept.NegLogDD)
	}
	return []Table{t}, nil
}

// prSeries condenses a ranking into the fixed-grid series the figure tables
// print: recall at retrieval depths and precision at recall levels.
func prSeries(results []eval.PRPoint) [][2]float64 {
	grid := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	out := make([][2]float64, 0, len(grid))
	for _, g := range grid {
		p := 0.0
		for _, pt := range results {
			if pt.Recall >= g {
				p = pt.Precision
				break
			}
		}
		out = append(out, [2]float64{g, p})
	}
	return out
}
