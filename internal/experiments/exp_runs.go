package experiments

import (
	"fmt"

	"milret/internal/core"
	"milret/internal/eval"
	"milret/internal/feature"
	"milret/internal/retrieval"
)

// sampleRun renders a Figure 4-3/4-4-style session: the per-round head of
// the training-pool ranking with correctness marks, then the head of the
// final test ranking.
func sampleRun(cfg Config, id, kind, target string, topN int) ([]Table, error) {
	cfg = cfg.withDefaults()
	res, err := runProtocol(cfg, kind, target, feature.Options{},
		cfg.trainConfig(core.SumConstraint, 0.5))
	if err != nil {
		return nil, err
	}
	t := Table{
		ID:     id,
		Title:  fmt.Sprintf("Sample run with %d rounds of training: retrieving %ss", cfg.Scale.Rounds, target),
		Header: []string{"stage", "top results (✓ = correct)", "correct"},
		Notes:  "paper shows image grids; this table lists the ranked IDs instead",
	}
	mark := func(rs []retrieval.Result) (string, int) {
		line := ""
		correct := 0
		for i, r := range rs {
			if i == topN {
				break
			}
			tick := "✗"
			if r.Label == target {
				tick = "✓"
				correct++
			}
			if i > 0 {
				line += " "
			}
			line += fmt.Sprintf("%s%s", r.ID, tick)
		}
		return line, correct
	}
	for i, ranking := range res.PoolRankings {
		line, correct := mark(ranking)
		t.AddRow(fmt.Sprintf("round %d pool top-%d", i+1, topN), line, correct)
	}
	line, correct := mark(res.TestRanking)
	t.AddRow(fmt.Sprintf("final test top-%d", topN), line, correct)
	return []Table{t}, nil
}

// Fig43 reproduces the Figure 4-3 waterfall session on the natural-scene
// database.
func Fig43(cfg Config) ([]Table, error) {
	return sampleRun(cfg, "Fig43", "scenes", "waterfall", 12)
}

// Fig44 reproduces the Figure 4-4 car session on the object database.
func Fig44(cfg Config) ([]Table, error) {
	return sampleRun(cfg, "Fig44", "objects", "car", 12)
}

// Fig45_46 reproduces Figures 4-5 and 4-6: the recall curve and
// precision-recall curve of the Fig43 session's final test ranking.
func Fig45_46(cfg Config) ([]Table, error) {
	cfg = cfg.withDefaults()
	res, err := runProtocol(cfg, "scenes", "waterfall", feature.Options{},
		cfg.trainConfig(core.SumConstraint, 0.5))
	if err != nil {
		return nil, err
	}
	recall := eval.RecallCurve(res.TestRanking, "waterfall")
	tr := Table{
		ID:     "Fig45_46",
		Title:  "Recall curve for the Fig43 session (paper Fig 4-5)",
		Header: []string{"retrieved", "recall"},
		Notes:  "a random ranking follows the diagonal; convex is better",
	}
	n := len(recall)
	for _, frac := range []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.75, 1.0} {
		k := int(frac * float64(n))
		if k < 1 {
			k = 1
		}
		tr.AddRow(k, recall[k-1])
	}
	pr := eval.PrecisionRecall(res.TestRanking, "waterfall")
	tp := Table{
		ID:     "Fig45_46",
		Title:  "Precision-recall curve for the Fig43 session (paper Fig 4-6)",
		Header: []string{"recall", "precision"},
		Notes:  "random retrieval is flat at the category frequency (0.2 for scenes)",
	}
	for _, pt := range prSeries(pr) {
		tp.AddRow(pt[0], pt[1])
	}
	return []Table{tr, tp}, nil
}

// Fig47 reproduces the Figure 4-7 demonstration: when the very first
// retrieved image is wrong and the next several are right, the
// precision-recall curve starts at 0 and looks misleadingly bad. The table
// is computed from exactly the paper's scenario (1 miss, then 7 hits).
func Fig47(cfg Config) ([]Table, error) {
	results := make([]retrieval.Result, 0, 8)
	results = append(results, retrieval.Result{ID: "wrong-0", Label: "other", Dist: 0.1})
	for i := 0; i < 7; i++ {
		results = append(results, retrieval.Result{
			ID: fmt.Sprintf("right-%d", i), Label: "target", Dist: 0.2 + float64(i)*0.1,
		})
	}
	pr := eval.PrecisionRecall(results, "target")
	t := Table{
		ID:     "Fig47",
		Title:  "A somewhat misleading precision-recall curve (paper Fig 4-7)",
		Header: []string{"rank", "recall", "precision"},
		Notes:  "first image incorrect, following 7 correct — precision recovers to 7/8",
	}
	for i, pt := range pr {
		t.AddRow(i+1, pt.Recall, pt.Precision)
	}
	return []Table{t}, nil
}
