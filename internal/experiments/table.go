package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment artifact: the rows/series a paper table
// or figure reports, in text form.
type Table struct {
	// ID is the experiment identifier ("Table31", "Fig43", ...).
	ID string
	// Title describes the artifact ("Correlation coefficients of sample
	// image pairs").
	Title string
	// Header names the columns.
	Header []string
	// Rows hold the formatted cells.
	Rows [][]string
	// Notes carries caveats (scale used, substitutions) printed after the
	// table.
	Notes string
}

// AddRow appends a formatted row; values are stringified with %v and
// float64 values with 3 decimals.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Format writes the table as aligned text.
func (t *Table) Format(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table as comma-separated values (quotes are not needed for
// the numeric/identifier content these tables carry).
func (t *Table) CSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
