package experiments

import (
	"fmt"

	"milret/internal/core"
	"milret/internal/feature"
	"milret/internal/region"
)

// Fig418 reproduces the instances-per-bag study (paper Fig 4-18): the same
// protocol with 18, 40 and 84 instances per bag (region families of 9, 20
// and 42 with mirrors) on three scene categories. More instances raise the
// chance of hitting the right region but add noise, so more is not always
// better.
func Fig418(cfg Config) ([]Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		ID:     "Fig418",
		Title:  "Choosing different numbers of instances per bag",
		Header: []string{"category", "instances/bag", "AP", "prec@recall.3-.4"},
		Notes:  "paper: no monotone winner — 40 often best, 84 sometimes worse (noise)",
	}
	for _, target := range []string{"sunset", "waterfall", "field"} {
		for _, fam := range []region.SetSize{region.Small, region.Default, region.Large} {
			opts := feature.Options{Regions: fam}
			res, err := runProtocol(cfg, "scenes", target, opts,
				cfg.trainConfig(core.SumConstraint, 0.5))
			if err != nil {
				return nil, err
			}
			ap, window, _, _ := summarize(res.TestRanking, target)
			t.AddRow(target, opts.MaxInstances(), ap, window)
		}
	}
	return []Table{t}, nil
}

// Fig419 reproduces the resolution study (paper Fig 4-19): smoothing and
// sampling at 6×6, 10×10 and 15×15. Performance typically rises then falls
// with resolution — too coarse carries no information, too fine is
// shift-sensitive and noisy.
func Fig419(cfg Config) ([]Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		ID:     "Fig419",
		Title:  "Smoothing and sampling at different resolutions",
		Header: []string{"category", "resolution", "dims", "AP", "prec@recall.3-.4"},
		Notes:  "paper: rise-then-fall in many cases; the best resolution is image-dependent",
	}
	for _, target := range []string{"sunset", "waterfall", "field"} {
		for _, h := range []int{6, 10, 15} {
			opts := feature.Options{Resolution: h}
			res, err := runProtocol(cfg, "scenes", target, opts,
				cfg.trainConfig(core.SumConstraint, 0.5))
			if err != nil {
				return nil, err
			}
			ap, window, _, _ := summarize(res.TestRanking, target)
			t.AddRow(target, fmt.Sprintf("%dx%d", h, h), h*h, ap, window)
		}
	}
	return []Table{t}, nil
}
