// Package experiments regenerates every quantitative table and figure of
// the paper's evaluation (chapter 4, plus Table 3.1 and the chapter-3
// illustrations). Each experiment is a pure function from a Config to one
// or more printable Tables; cmd/experiments prints them and the root
// bench_test.go benchmarks them. DESIGN.md carries the experiment index;
// EXPERIMENTS.md records paper-vs-measured shapes.
package experiments

import (
	"fmt"
	"sort"
	"sync"

	"milret/internal/core"
	"milret/internal/eval"
	"milret/internal/feature"
	"milret/internal/gray"
	"milret/internal/optimize"
	"milret/internal/retrieval"
	"milret/internal/synth"
)

// Scale bounds the computational size of an experiment run. The paper's
// full databases (500 scenes, 228 objects) with all-instance multi-start
// training are reproduced by FullScale; QuickScale and BenchScale shrink
// the corpus and the optimizer budget while preserving every protocol step,
// so shapes remain comparable at a fraction of the cost.
type Scale struct {
	// ScenesPerCat / ObjectsPerCat are corpus sizes per category.
	ScenesPerCat, ObjectsPerCat int
	// TrainFrac is the potential-training-set fraction (paper: 0.2).
	TrainFrac float64
	// StartBags caps the positive bags used as optimization starts (§4.3).
	StartBags int
	// OptMaxIter bounds the inner minimizer iterations per start.
	OptMaxIter int
	// Rounds is the number of protocol training rounds (paper: 3).
	Rounds int
	// Parallelism bounds worker goroutines (0 = NumCPU).
	Parallelism int
}

// FullScale reproduces the paper's setup.
func FullScale() Scale {
	return Scale{
		ScenesPerCat:  synth.ScenesPerCategory,
		ObjectsPerCat: synth.ObjectsPerCategory,
		TrainFrac:     0.2,
		StartBags:     3, // §4.3: indistinguishable from all 5
		OptMaxIter:    80,
		Rounds:        3,
	}
}

// QuickScale is the default for cmd/experiments: small corpus, full
// protocol.
func QuickScale() Scale {
	return Scale{
		ScenesPerCat:  24,
		ObjectsPerCat: 12,
		TrainFrac:     0.25,
		StartBags:     2,
		OptMaxIter:    40,
		Rounds:        3,
	}
}

// BenchScale is the tiny configuration used by testing.B benchmarks.
func BenchScale() Scale {
	return Scale{
		ScenesPerCat:  10,
		ObjectsPerCat: 8,
		TrainFrac:     0.4,
		StartBags:     1,
		OptMaxIter:    20,
		Rounds:        2,
	}
}

// Config parameterizes one experiment run.
type Config struct {
	// Seed drives corpus generation, splits and example selection.
	Seed int64
	// Scale bounds the run size; the zero value is replaced by QuickScale.
	Scale Scale
}

func (c Config) withDefaults() Config {
	if c.Scale == (Scale{}) {
		c.Scale = QuickScale()
	}
	if c.Seed == 0 {
		c.Seed = 1998 // the thesis year; any fixed value works
	}
	return c
}

// trainConfig assembles the Diverse Density configuration for a mode.
func (c Config) trainConfig(mode core.WeightMode, beta float64) core.Config {
	return core.Config{
		Mode:        mode,
		Beta:        beta,
		StartBags:   c.Scale.StartBags,
		Parallelism: c.Scale.Parallelism,
		Opt:         optimize.Options{MaxIter: c.Scale.OptMaxIter},
	}
}

// corpusKey identifies a cached featurized corpus.
type corpusKey struct {
	kind   string // "scenes" or "objects"
	seed   int64
	perCat int
	opts   feature.Options
}

var (
	corpusMu    sync.Mutex
	corpusCache = map[corpusKey][]retrieval.Item{}
)

// featurizedCorpus generates (or returns cached) preprocessed bags for a
// corpus. Featurization parallelizes across images.
func featurizedCorpus(kind string, seed int64, perCat int, opts feature.Options) ([]retrieval.Item, error) {
	key := corpusKey{kind, seed, perCat, opts}
	corpusMu.Lock()
	if items, ok := corpusCache[key]; ok {
		corpusMu.Unlock()
		return items, nil
	}
	corpusMu.Unlock()

	var raw []synth.Item
	switch kind {
	case "scenes":
		raw = synth.ScenesN(seed, perCat)
	case "objects":
		raw = synth.ObjectsN(seed, perCat)
	default:
		return nil, fmt.Errorf("experiments: unknown corpus kind %q", kind)
	}

	items := make([]retrieval.Item, len(raw))
	errs := make([]error, len(raw))
	var wg sync.WaitGroup
	sem := make(chan struct{}, 8)
	for i, it := range raw {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, it synth.Item) {
			defer wg.Done()
			defer func() { <-sem }()
			g := gray.FromImage(it.Image)
			bag, err := feature.BagFromImage(it.ID, g, opts)
			if err != nil {
				errs[i] = err
				return
			}
			items[i] = retrieval.Item{ID: it.ID, Label: it.Label, Bag: bag}
		}(i, it)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	corpusMu.Lock()
	corpusCache[key] = items
	corpusMu.Unlock()
	return items, nil
}

// splitCorpus featurizes and splits a corpus into pool and test databases.
func splitCorpus(cfg Config, kind string, opts feature.Options) (pool, test *retrieval.Database, err error) {
	perCat := cfg.Scale.ScenesPerCat
	if kind == "objects" {
		perCat = cfg.Scale.ObjectsPerCat
	}
	items, err := featurizedCorpus(kind, cfg.Seed, perCat, opts)
	if err != nil {
		return nil, nil, err
	}
	labels := make([]string, len(items))
	for i, it := range items {
		labels[i] = it.Label
	}
	sp, err := eval.StratifiedSplit(labels, cfg.Scale.TrainFrac, cfg.Seed)
	if err != nil {
		return nil, nil, err
	}
	return eval.SplitDatabases(items, sp)
}

// runProtocol executes the §4.1 session for a target category.
func runProtocol(cfg Config, kind, target string, opts feature.Options, train core.Config) (*eval.ProtocolResult, error) {
	pool, test, err := splitCorpus(cfg, kind, opts)
	if err != nil {
		return nil, err
	}
	pc := eval.ProtocolConfig{
		Target: target,
		Rounds: cfg.Scale.Rounds,
		Train:  train,
		Seed:   cfg.Seed,
	}
	// Small pools cannot spare 5+5 examples; shrink proportionally while
	// keeping at least 3 positives and 3 negatives.
	poolPerCat := poolCategoryCount(pool, target)
	if poolPerCat < 5 {
		pc.NumPos = shrinkExamples(poolPerCat)
		pc.NumNeg = pc.NumPos
		pc.FalsePositivesPerRound = 3
	}
	return eval.RunProtocol(pool, test, pc)
}

func poolCategoryCount(pool *retrieval.Database, target string) int {
	n := 0
	for _, it := range pool.Items() {
		if it.Label == target {
			n++
		}
	}
	return n
}

// summarize condenses a test ranking into the scalar columns shared by the
// comparison tables.
func summarize(results []retrieval.Result, target string) (ap, window, p10, r50 float64) {
	pr := eval.PrecisionRecall(results, target)
	ap = eval.AveragePrecision(results, target)
	window = eval.AvgPrecisionWindow(pr, 0.3, 0.4)
	p10 = eval.PrecisionAt(results, target, 10)
	r50 = eval.RecallAt(results, target, 50)
	return
}

// Runner is an experiment entry point.
type Runner func(Config) ([]Table, error)

// Registry maps experiment IDs (DESIGN.md per-experiment index) to runners,
// in presentation order.
func Registry() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{"Table31", Table31},
		{"Fig33_34", Fig33_34},
		{"Fig37_39", Fig37_39},
		{"Fig43", Fig43},
		{"Fig44", Fig44},
		{"Fig45_46", Fig45_46},
		{"Fig47", Fig47},
		{"Fig48", Fig48},
		{"Fig49", Fig49},
		{"Fig410", Fig410},
		{"Fig411", Fig411},
		{"Fig412", Fig412},
		{"Fig413", Fig413},
		{"Fig414", Fig414},
		{"Fig415_417", Fig415_417},
		{"Fig418", Fig418},
		{"Fig419", Fig419},
		{"Fig420_421", Fig420_421},
		{"Fig422", Fig422},
		{"ExtColor", ExtColor},
		{"ExtRotations", ExtRotations},
		{"ExtEMDD", ExtEMDD},
	}
}

// Run executes one experiment by ID.
func Run(id string, cfg Config) ([]Table, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e.Run(cfg)
		}
	}
	ids := make([]string, 0)
	for _, e := range Registry() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, ids)
}

// featOpts returns the default feature options used by experiments.
func featOpts() feature.Options { return feature.Options{} }

// shrinkExamples picks the initial positive-example count for a pool that
// cannot spare the paper's 5: as many as possible up to 3, never more than
// the pool holds. Consuming the whole pool category is acceptable — false
// positives are mined from the remainder and the test set stays untouched.
func shrinkExamples(poolPerCat int) int {
	n := poolPerCat - 1
	if n < 3 {
		n = 3
	}
	if n > poolPerCat {
		n = poolPerCat
	}
	if n < 1 {
		n = 1
	}
	return n
}
