package experiments

import (
	"fmt"

	"milret/internal/core"
	"milret/internal/feature"
)

// Fig422 reproduces the minimization-speedup study (paper Fig 4-22,
// §4.3): starting the DD minimization from the instances of only a subset
// of the positive bags. The paper found 2-of-5 bags reaches about 95% of
// full performance and 3-of-5 is indistinguishable, while training cost
// falls proportionally. The evals column counts objective evaluations — the
// hardware-independent proxy for training time.
func Fig422(cfg Config) ([]Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		ID:     "Fig422",
		Title:  "Starting minimization from a subset of positive bags (sunset task)",
		Header: []string{"start bags", "prec@recall.3-.4", "relative", "train evals", "eval fraction"},
		Notes:  "paper: 2/5 bags ≈ 95% of full performance, 3/5 indistinguishable",
	}
	type outcome struct {
		window float64
		evals  int
	}
	var outcomes []outcome
	maxBags := 5
	for bags := 1; bags <= maxBags; bags++ {
		train := cfg.trainConfig(core.SumConstraint, 0.5)
		train.StartBags = bags
		res, err := runProtocol(cfg, "scenes", "sunset", feature.Options{}, train)
		if err != nil {
			return nil, err
		}
		_, window, _, _ := summarize(res.TestRanking, "sunset")
		outcomes = append(outcomes, outcome{window: window, evals: res.Concept.Evals})
	}
	full := outcomes[len(outcomes)-1]
	for i, o := range outcomes {
		rel := 0.0
		if full.window > 0 {
			rel = o.window / full.window
		}
		fracEvals := 0.0
		if full.evals > 0 {
			fracEvals = float64(o.evals) / float64(full.evals)
		}
		t.AddRow(fmt.Sprintf("%d of %d", i+1, maxBags), o.window, rel, o.evals, fracEvals)
	}
	return []Table{t}, nil
}
