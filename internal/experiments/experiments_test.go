package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func benchCfg() Config {
	return Config{Seed: 7, Scale: BenchScale()}
}

func cell(t *testing.T, tab Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric: %v", row, col, tab.Rows[row][col], err)
	}
	return v
}

func TestTable31Shape(t *testing.T) {
	tabs, err := Table31(benchCfg())
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	if len(tab.Rows) != 6 {
		t.Fatalf("Table31 has %d rows, want 6", len(tab.Rows))
	}
	// Similar pairs must out-correlate dissimilar pairs on average — the
	// qualitative content of Table 3.1.
	var sim, dis float64
	for i := 0; i < 4; i++ {
		sim += cell(t, tab, i, 2)
	}
	for i := 4; i < 6; i++ {
		dis += cell(t, tab, i, 2)
	}
	if sim/4 <= dis/2 {
		t.Fatalf("similar pairs (%v) do not out-correlate dissimilar (%v)", sim/4, dis/2)
	}
}

func TestFig33_34RegionBeatsWhole(t *testing.T) {
	tabs, err := Fig33_34(benchCfg())
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	whole := cell(t, tab, 0, 1)
	best := cell(t, tab, 1, 1)
	if best <= whole {
		t.Fatalf("best region pair (%v) must beat whole-image corr (%v)", best, whole)
	}
}

func TestFig37_39WeightBehaviour(t *testing.T) {
	tabs, err := Fig37_39(benchCfg())
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	if len(tab.Rows) != 3 {
		t.Fatalf("want 3 mode rows, got %d", len(tab.Rows))
	}
	// identical: all weights exactly one.
	if got := cell(t, tab, 1, 2); got != 1 {
		t.Fatalf("identical mean weight = %v", got)
	}
	// inequality β=0.5 keeps at least half the weight mass.
	if got := cell(t, tab, 2, 5); got < 0.5-1e-6 {
		t.Fatalf("constrained sum(w)/n = %v < 0.5", got)
	}
	// original DD weight mass must be below the constrained one
	// (overfitting pressure, §3.6).
	if cell(t, tab, 0, 5) >= cell(t, tab, 2, 5)+0.25 {
		t.Fatalf("original DD kept unexpectedly high weight mass: %v vs %v",
			cell(t, tab, 0, 5), cell(t, tab, 2, 5))
	}
}

func TestFig47MisleadingCurve(t *testing.T) {
	tabs, err := Fig47(benchCfg())
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	if got := cell(t, tab, 0, 2); got != 0 {
		t.Fatalf("first precision = %v, want 0", got)
	}
	if got := cell(t, tab, 7, 2); got != 0.875 {
		t.Fatalf("final precision = %v, want 7/8", got)
	}
}

func TestFig43RunsAndReports(t *testing.T) {
	tabs, err := Fig43(benchCfg())
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	if len(tab.Rows) < 2 {
		t.Fatalf("sample run has %d stages", len(tab.Rows))
	}
	// Final ranked retrieval must beat random: with 5 categories, random
	// top-12 has ~2.4 correct; require at least 4.
	final := tab.Rows[len(tab.Rows)-1]
	correct, err := strconv.Atoi(final[2])
	if err != nil {
		t.Fatal(err)
	}
	if correct < 4 {
		t.Fatalf("final top-12 has only %d correct", correct)
	}
}

func TestFig422SubsetCheaper(t *testing.T) {
	tabs, err := Fig422(benchCfg())
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	if len(tab.Rows) != 5 {
		t.Fatalf("want 5 start-bag rows, got %d", len(tab.Rows))
	}
	// Evals must grow with the number of start bags.
	if cell(t, tab, 0, 3) >= cell(t, tab, 4, 3) {
		t.Fatalf("1-bag training not cheaper than 5-bag: %v vs %v",
			cell(t, tab, 0, 3), cell(t, tab, 4, 3))
	}
}

func TestRunRegistry(t *testing.T) {
	if _, err := Run("NoSuch", benchCfg()); err == nil {
		t.Fatalf("unknown experiment accepted")
	}
	tabs, err := Run("Fig47", benchCfg())
	if err != nil || len(tabs) == 0 {
		t.Fatalf("registry dispatch failed: %v", err)
	}
	seen := map[string]bool{}
	for _, e := range Registry() {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment ID %q", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil {
			t.Fatalf("experiment %q has nil runner", e.ID)
		}
	}
	if len(seen) != 22 {
		t.Fatalf("registry has %d experiments, want 22 (19 paper artifacts + 3 extensions)", len(seen))
	}
}

func TestTableFormatAndCSV(t *testing.T) {
	tab := Table{
		ID:     "X",
		Title:  "demo",
		Header: []string{"a", "bb"},
		Notes:  "hello",
	}
	tab.AddRow("v", 0.5)
	tab.AddRow(12, "w")
	var buf bytes.Buffer
	if err := tab.Format(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== X — demo ==", "a", "bb", "0.500", "12", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted table missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := tab.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "a,bb\n") {
		t.Fatalf("CSV header wrong: %q", buf.String())
	}
}

func TestCorpusCacheReuse(t *testing.T) {
	cfg := benchCfg()
	a, err := featurizedCorpus("scenes", cfg.Seed, 2, featOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := featurizedCorpus("scenes", cfg.Seed, 2, featOpts())
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Fatalf("corpus cache did not reuse the featurized items")
	}
	if _, err := featurizedCorpus("bogus", 1, 1, featOpts()); err == nil {
		t.Fatalf("unknown corpus kind accepted")
	}
}

func TestExtEMDDRuns(t *testing.T) {
	tabs, err := ExtEMDD(benchCfg())
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	if len(tab.Rows) != 2 {
		t.Fatalf("want 2 algorithm rows, got %d", len(tab.Rows))
	}
	if tab.Rows[0][0] != "diverse density" || tab.Rows[1][0] != "em-dd" {
		t.Fatalf("rows mislabelled: %v", tab.Rows)
	}
}

func TestExtRotationsHelps(t *testing.T) {
	tabs, err := ExtRotations(benchCfg())
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	plain := cell(t, tab, 0, 2)
	withRot := cell(t, tab, 1, 2)
	if withRot < plain-0.05 {
		t.Fatalf("rotation instances hurt on rotated corpus: %v vs %v", withRot, plain)
	}
}
