package experiments

import (
	"sync"

	"milret/internal/baseline"
	"milret/internal/core"
	"milret/internal/eval"
	"milret/internal/feature"
	"milret/internal/retrieval"
	"milret/internal/synth"
)

type baselineKey struct {
	seed   int64
	perCat int
	method baseline.Method
}

var (
	baselineMu    sync.Mutex
	baselineCache = map[baselineKey][]retrieval.Item{}
)

// baselineCorpus featurizes the scene corpus with the Maron & Lakshmi Ratan
// color features (§4.2.4 comparison).
func baselineCorpus(seed int64, perCat int, method baseline.Method) ([]retrieval.Item, error) {
	key := baselineKey{seed, perCat, method}
	baselineMu.Lock()
	if items, ok := baselineCache[key]; ok {
		baselineMu.Unlock()
		return items, nil
	}
	baselineMu.Unlock()

	raw := synth.ScenesN(seed, perCat)
	items := make([]retrieval.Item, len(raw))
	for i, it := range raw {
		bag, err := baseline.BagFromImage(it.ID, it.Image, method)
		if err != nil {
			return nil, err
		}
		items[i] = retrieval.Item{ID: it.ID, Label: it.Label, Bag: bag}
	}
	baselineMu.Lock()
	baselineCache[key] = items
	baselineMu.Unlock()
	return items, nil
}

// runBaselineProtocol runs the §4.1 session over the color-feature corpus.
func runBaselineProtocol(cfg Config, target string, method baseline.Method) (*eval.ProtocolResult, error) {
	items, err := baselineCorpus(cfg.Seed, cfg.Scale.ScenesPerCat, method)
	if err != nil {
		return nil, err
	}
	labels := make([]string, len(items))
	for i, it := range items {
		labels[i] = it.Label
	}
	sp, err := eval.StratifiedSplit(labels, cfg.Scale.TrainFrac, cfg.Seed)
	if err != nil {
		return nil, err
	}
	pool, test, err := eval.SplitDatabases(items, sp)
	if err != nil {
		return nil, err
	}
	pc := eval.ProtocolConfig{
		Target: target,
		Rounds: cfg.Scale.Rounds,
		Train:  cfg.trainConfig(core.Original, 0),
		Seed:   cfg.Seed,
	}
	if poolPerCat := poolCategoryCount(pool, target); poolPerCat < 5 {
		pc.NumPos = shrinkExamples(poolPerCat)
		pc.NumNeg = pc.NumPos
		pc.FalsePositivesPerRound = 3
	}
	return eval.RunProtocol(pool, test, pc)
}

// Fig420_421 reproduces the comparison with the previous approach (paper
// Figs 4-20/4-21): our gray-level correlation system — with original DD and
// with the β=0.25 inequality constraint — against the color-feature
// baseline, retrieving waterfalls from the natural-scene database. The
// paper's finding: the approaches perform very close to each other on
// scenes, while ours additionally handles object images (Figs 4-11..4-14).
func Fig420_421(cfg Config) ([]Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		ID:     "Fig420_421",
		Title:  "Comparison with the previous approach (retrieving waterfalls)",
		Header: []string{"system", "AP", "prec@recall.3-.4", "P@10", "R@50"},
		Notes:  "paper: our curves are very close to Maron & Lakshmi Ratan's on natural scenes",
	}
	ours := []struct {
		label string
		mode  core.WeightMode
		beta  float64
	}{
		{"ours (original DD)", core.Original, 0},
		{"ours (inequality β=0.25)", core.SumConstraint, 0.25},
	}
	for _, o := range ours {
		res, err := runProtocol(cfg, "scenes", "waterfall", feature.Options{},
			cfg.trainConfig(o.mode, o.beta))
		if err != nil {
			return nil, err
		}
		ap, window, p10, r50 := summarize(res.TestRanking, "waterfall")
		t.AddRow(o.label, ap, window, p10, r50)
	}
	for _, m := range []struct {
		label  string
		method baseline.Method
	}{
		{"previous approach (color SBN)", baseline.SBN},
		{"previous approach (color rows)", baseline.Rows},
	} {
		res, err := runBaselineProtocol(cfg, "waterfall", m.method)
		if err != nil {
			return nil, err
		}
		ap, window, p10, r50 := summarize(res.TestRanking, "waterfall")
		t.AddRow(m.label, ap, window, p10, r50)
	}
	return []Table{t}, nil
}
