package experiments

import (
	"sync"

	"milret/internal/core"
	"milret/internal/eval"
	"milret/internal/feature"
	"milret/internal/gray"
	"milret/internal/mil"
	"milret/internal/retrieval"
	"milret/internal/synth"
)

// The Ext* experiments go beyond the paper's figures: they evaluate the
// extensions the paper's §5 proposes as future work (color features,
// rotation instances) and the canonical follow-up algorithm (EM-DD),
// using the same protocol and corpora as the reproduced figures.

// colorCorpus featurizes the scene corpus with the tripled-RGB features.
var (
	colorMu    sync.Mutex
	colorCache = map[corpusKey][]retrieval.Item{}
)

func colorCorpus(seed int64, perCat int, opts feature.Options) ([]retrieval.Item, error) {
	key := corpusKey{"scenes-color", seed, perCat, opts}
	colorMu.Lock()
	if items, ok := colorCache[key]; ok {
		colorMu.Unlock()
		return items, nil
	}
	colorMu.Unlock()

	raw := synth.ScenesN(seed, perCat)
	items := make([]retrieval.Item, len(raw))
	errs := make([]error, len(raw))
	var wg sync.WaitGroup
	sem := make(chan struct{}, 8)
	for i, it := range raw {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, it synth.Item) {
			defer wg.Done()
			defer func() { <-sem }()
			bag, err := feature.BagFromColorImage(it.ID, it.Image, opts)
			if err != nil {
				errs[i] = err
				return
			}
			items[i] = retrieval.Item{ID: it.ID, Label: it.Label, Bag: bag}
		}(i, it)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	colorMu.Lock()
	colorCache[key] = items
	colorMu.Unlock()
	return items, nil
}

// runColorProtocol is runProtocol over the color-feature corpus.
func runColorProtocol(cfg Config, target string, train core.Config) (*eval.ProtocolResult, error) {
	items, err := colorCorpus(cfg.Seed, cfg.Scale.ScenesPerCat, feature.Options{})
	if err != nil {
		return nil, err
	}
	labels := make([]string, len(items))
	for i, it := range items {
		labels[i] = it.Label
	}
	sp, err := eval.StratifiedSplit(labels, cfg.Scale.TrainFrac, cfg.Seed)
	if err != nil {
		return nil, err
	}
	pool, test, err := eval.SplitDatabases(items, sp)
	if err != nil {
		return nil, err
	}
	pc := eval.ProtocolConfig{Target: target, Rounds: cfg.Scale.Rounds, Train: train, Seed: cfg.Seed}
	if poolPerCat := poolCategoryCount(pool, target); poolPerCat < 5 {
		pc.NumPos = shrinkExamples(poolPerCat)
		pc.NumNeg = pc.NumPos
		pc.FalsePositivesPerRound = 3
	}
	return eval.RunProtocol(pool, test, pc)
}

// ExtColor compares gray-scale features against the tripled-RGB variant of
// §5 on two color-sensitive scene categories. The paper reports "no
// significant improvements" from the color variant; this experiment
// reproduces that comparison on the synthetic corpus.
func ExtColor(cfg Config) ([]Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		ID:     "ExtColor",
		Title:  "Extension: gray-scale vs tripled-RGB features (§5 future work)",
		Header: []string{"category", "features", "dims", "AP", "prec@recall.3-.4"},
		Notes:  "paper §5: no significant improvement was observed from RGB tripling",
	}
	train := cfg.trainConfig(core.SumConstraint, 0.5)
	for _, target := range []string{"sunset", "field"} {
		res, err := runProtocol(cfg, "scenes", target, feature.Options{}, train)
		if err != nil {
			return nil, err
		}
		ap, window, _, _ := summarize(res.TestRanking, target)
		t.AddRow(target, "gray h²", 100, ap, window)

		cres, err := runColorProtocol(cfg, target, train)
		if err != nil {
			return nil, err
		}
		cap_, cwindow, _, _ := summarize(cres.TestRanking, target)
		t.AddRow(target, "color 3h²", 300, cap_, cwindow)
	}
	return []Table{t}, nil
}

// ExtRotations measures the §5 rotation-instance extension: a corpus whose
// query categories appear at arbitrary quarter-turn rotations is searched
// with and without rotation instances. The rotation variant must win there,
// at the cost of 4× larger bags.
func ExtRotations(cfg Config) ([]Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		ID:     "ExtRotations",
		Title:  "Extension: quarter-turn rotation instances (§5 future work)",
		Header: []string{"corpus", "instances/bag", "AP", "prec@recall.3-.4"},
		Notes:  "rotated-query corpus: every database image randomly rotated by 0/90/180/270 degrees",
	}
	// Build a rotated object corpus: deterministic per-image rotation.
	raw := synth.ObjectsN(cfg.Seed, cfg.Scale.ObjectsPerCat)
	for _, rot := range []bool{false, true} {
		opts := feature.Options{Rotations: rot}
		items := make([]retrieval.Item, len(raw))
		for i, it := range raw {
			g := grayFromRGBA(it)
			switch i % 4 {
			case 1:
				g = g.Rotate90()
			case 2:
				g = g.Rotate180()
			case 3:
				g = g.Rotate270()
			}
			bag, err := feature.BagFromImage(it.ID, g, opts)
			if err != nil {
				return nil, err
			}
			items[i] = retrieval.Item{ID: it.ID, Label: it.Label, Bag: bag}
		}
		labels := make([]string, len(items))
		for i, it := range items {
			labels[i] = it.Label
		}
		sp, err := eval.StratifiedSplit(labels, cfg.Scale.TrainFrac, cfg.Seed)
		if err != nil {
			return nil, err
		}
		pool, test, err := eval.SplitDatabases(items, sp)
		if err != nil {
			return nil, err
		}
		pc := eval.ProtocolConfig{
			Target: "car",
			Rounds: cfg.Scale.Rounds,
			Train:  cfg.trainConfig(core.Identical, 0),
			Seed:   cfg.Seed,
		}
		if poolPerCat := poolCategoryCount(pool, "car"); poolPerCat < 5 {
			pc.NumPos = shrinkExamples(poolPerCat)
			pc.NumNeg = pc.NumPos
			pc.FalsePositivesPerRound = 3
		}
		res, err := eval.RunProtocol(pool, test, pc)
		if err != nil {
			return nil, err
		}
		ap, window, _, _ := summarize(res.TestRanking, "car")
		t.AddRow("rotated objects", opts.MaxInstances(), ap, window)
	}
	return []Table{t}, nil
}

// ExtEMDD compares the paper's exact multi-start DD maximization against
// the EM-DD refinement on the same task: quality (AP) and cost (objective
// evaluations).
func ExtEMDD(cfg Config) ([]Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		ID:     "ExtEMDD",
		Title:  "Extension: Diverse Density vs EM-DD (quality and training cost)",
		Header: []string{"algorithm", "AP", "prec@recall.3-.4", "train evals"},
		Notes:  "EM-DD optimizes a one-instance-per-bag surrogate; evals count objective evaluations",
	}
	pool, test, err := splitCorpus(cfg, "scenes", feature.Options{})
	if err != nil {
		return nil, err
	}
	// The feedback protocol drives core.Train internally, so the two
	// algorithms are compared on one training round over identical
	// examples: the first 5 waterfall bags and 5 non-waterfall bags of the
	// pool.
	ds := datasetForTarget(pool.Items(), "waterfall", 5, 5)
	dd, err := core.Train(ds, cfg.trainConfig(core.Identical, 0))
	if err != nil {
		return nil, err
	}
	em, err := core.TrainEMDD(ds, cfg.trainConfig(core.Identical, 0))
	if err != nil {
		return nil, err
	}
	for _, row := range []struct {
		name    string
		concept *core.Concept
	}{
		{"diverse density", dd},
		{"em-dd", em},
	} {
		ranking := retrieval.Rank(test, row.concept, retrieval.Options{})
		ap, window, _, _ := summarize(ranking, "waterfall")
		t.AddRow(row.name, ap, window, row.concept.Evals)
	}
	return []Table{t}, nil
}

// grayFromRGBA converts a synth item's image to the gray image type.
func grayFromRGBA(it synth.Item) *gray.Image { return gray.FromImage(it.Image) }

// datasetForTarget assembles a MIL dataset from labelled items: the first
// nPos bags carrying the target label become positives and the first nNeg
// other bags become negatives. Counts are clamped to availability.
func datasetForTarget(items []retrieval.Item, target string, nPos, nNeg int) *mil.Dataset {
	ds := &mil.Dataset{}
	for _, it := range items {
		if it.Label == target && len(ds.Positive) < nPos {
			ds.Positive = append(ds.Positive, it.Bag)
		}
		if it.Label != target && len(ds.Negative) < nNeg {
			ds.Negative = append(ds.Negative, it.Bag)
		}
	}
	return ds
}
