package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"milret/internal/retrieval"
)

func res(labels ...string) []retrieval.Result {
	out := make([]retrieval.Result, len(labels))
	for i, lb := range labels {
		out[i] = retrieval.Result{ID: string(rune('a' + i)), Label: lb, Dist: float64(i)}
	}
	return out
}

func TestRecallCurvePerfect(t *testing.T) {
	r := res("x", "x", "y", "y")
	c := RecallCurve(r, "x")
	want := []float64{0.5, 1, 1, 1}
	for i := range want {
		if math.Abs(c[i]-want[i]) > 1e-12 {
			t.Fatalf("recall[%d] = %v, want %v", i, c[i], want[i])
		}
	}
}

func TestRecallCurveNoTargets(t *testing.T) {
	c := RecallCurve(res("y", "y"), "x")
	for _, v := range c {
		if v != 0 {
			t.Fatalf("recall with no targets = %v", c)
		}
	}
}

func TestPrecisionRecallPerfectPrefix(t *testing.T) {
	pr := PrecisionRecall(res("x", "x", "y"), "x")
	if pr[0].Precision != 1 || pr[1].Precision != 1 {
		t.Fatalf("perfect prefix precision: %+v", pr)
	}
	if math.Abs(pr[2].Precision-2.0/3) > 1e-12 {
		t.Fatalf("precision after miss: %v", pr[2].Precision)
	}
	if pr[1].Recall != 1 {
		t.Fatalf("recall after all found: %v", pr[1].Recall)
	}
}

func TestPrecisionRecallMisleadingFirstMiss(t *testing.T) {
	// Figure 4-7: first image wrong, next seven right.
	labels := []string{"y", "x", "x", "x", "x", "x", "x", "x"}
	pr := PrecisionRecall(res(labels...), "x")
	if pr[0].Precision != 0 {
		t.Fatalf("first precision should be 0: %+v", pr[0])
	}
	if math.Abs(pr[7].Precision-7.0/8) > 1e-12 {
		t.Fatalf("final precision: %v", pr[7].Precision)
	}
}

// Property: recall curves are monotone non-decreasing and end at 1 when any
// target exists; precision stays within (0, 1].
func TestQuickCurveInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(60)
		labels := make([]string, n)
		hasTarget := false
		for i := range labels {
			if r.Float64() < 0.3 {
				labels[i] = "t"
				hasTarget = true
			} else {
				labels[i] = "o"
			}
		}
		rs := res(labels...)
		rec := RecallCurve(rs, "t")
		pr := PrecisionRecall(rs, "t")
		for i := range rec {
			if i > 0 && rec[i] < rec[i-1] {
				return false
			}
			if pr[i].Precision < 0 || pr[i].Precision > 1 {
				return false
			}
			if math.Abs(pr[i].Recall-rec[i]) > 1e-12 {
				return false
			}
		}
		if hasTarget && math.Abs(rec[n-1]-1) > 1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAvgPrecisionWindow(t *testing.T) {
	pr := []PRPoint{
		{Recall: 0.1, Precision: 1.0},
		{Recall: 0.35, Precision: 0.8},
		{Recall: 0.38, Precision: 0.6},
		{Recall: 0.9, Precision: 0.2},
	}
	if got := AvgPrecisionWindow(pr, 0.3, 0.4); math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("window avg = %v, want 0.7", got)
	}
	// Window jumped over: fall back to first point with recall ≥ lo.
	if got := AvgPrecisionWindow(pr, 0.5, 0.6); got != 0.2 {
		t.Fatalf("jumped window = %v, want 0.2", got)
	}
	if got := AvgPrecisionWindow(nil, 0.3, 0.4); got != 0 {
		t.Fatalf("empty curve = %v, want 0", got)
	}
}

func TestAveragePrecision(t *testing.T) {
	if got := AveragePrecision(res("x", "x", "y", "y"), "x"); got != 1 {
		t.Fatalf("perfect AP = %v", got)
	}
	// Targets at ranks 2 and 4: AP = (1/2 + 2/4)/2 = 0.5.
	if got := AveragePrecision(res("y", "x", "y", "x"), "x"); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("AP = %v, want 0.5", got)
	}
	if got := AveragePrecision(res("y", "y"), "x"); got != 0 {
		t.Fatalf("no-target AP = %v", got)
	}
}

func TestPrecisionRecallAt(t *testing.T) {
	rs := res("x", "y", "x", "y")
	if got := PrecisionAt(rs, "x", 2); got != 0.5 {
		t.Fatalf("P@2 = %v", got)
	}
	if got := PrecisionAt(rs, "x", 100); got != 0.5 {
		t.Fatalf("P@clamped = %v", got)
	}
	if got := PrecisionAt(rs, "x", 0); got != 0 {
		t.Fatalf("P@0 = %v", got)
	}
	if got := RecallAt(rs, "x", 1); got != 0.5 {
		t.Fatalf("R@1 = %v", got)
	}
	if got := RecallAt(rs, "x", 4); got != 1 {
		t.Fatalf("R@4 = %v", got)
	}
}

func TestStratifiedSplitFractions(t *testing.T) {
	labels := make([]string, 100)
	for i := range labels {
		if i < 60 {
			labels[i] = "a"
		} else {
			labels[i] = "b"
		}
	}
	sp, err := StratifiedSplit(labels, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, i := range sp.Train {
		counts[labels[i]]++
	}
	if counts["a"] != 12 || counts["b"] != 8 {
		t.Fatalf("train counts %v, want a:12 b:8", counts)
	}
	if len(sp.Train)+len(sp.Test) != 100 {
		t.Fatalf("split loses items: %d + %d", len(sp.Train), len(sp.Test))
	}
}

func TestStratifiedSplitDisjointComplete(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		labels := make([]string, n)
		for i := range labels {
			labels[i] = string(rune('a' + r.Intn(3)))
		}
		sp, err := StratifiedSplit(labels, r.Float64(), seed)
		if err != nil {
			return false
		}
		seen := map[int]int{}
		for _, i := range sp.Train {
			seen[i]++
		}
		for _, i := range sp.Test {
			seen[i]++
		}
		if len(seen) != n {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStratifiedSplitDeterministic(t *testing.T) {
	labels := []string{"a", "a", "b", "b", "a", "b", "a", "b"}
	s1, _ := StratifiedSplit(labels, 0.5, 42)
	s2, _ := StratifiedSplit(labels, 0.5, 42)
	if len(s1.Train) != len(s2.Train) {
		t.Fatalf("non-deterministic split size")
	}
	for i := range s1.Train {
		if s1.Train[i] != s2.Train[i] {
			t.Fatalf("non-deterministic split")
		}
	}
}

func TestStratifiedSplitAtLeastOne(t *testing.T) {
	labels := []string{"a", "a", "a", "b"} // 20% of 1 rounds to 0
	sp, err := StratifiedSplit(labels, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	foundB := false
	for _, i := range sp.Train {
		if labels[i] == "b" {
			foundB = true
		}
	}
	if !foundB {
		t.Fatalf("label with few items got no training representation")
	}
}

func TestStratifiedSplitBadFraction(t *testing.T) {
	if _, err := StratifiedSplit([]string{"a"}, -0.1, 1); err == nil {
		t.Fatalf("negative fraction accepted")
	}
	if _, err := StratifiedSplit([]string{"a"}, 1.1, 1); err == nil {
		t.Fatalf("fraction > 1 accepted")
	}
}
