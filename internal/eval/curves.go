// Package eval implements the paper's evaluation machinery (§4.1): recall
// curves and precision-recall curves over rankings, the windowed
// average-precision summary used in Figure 4-22, stratified train/test
// splits, and the automated relevance-feedback protocol that simulates a
// user picking out false positives across training rounds.
package eval

import (
	"fmt"
	"math/rand"
	"sort"

	"milret/internal/retrieval"
)

// PRPoint is one point of a precision-recall curve.
type PRPoint struct {
	Recall    float64
	Precision float64
}

// CountLabel returns how many results carry the target label.
func CountLabel(results []retrieval.Result, target string) int {
	n := 0
	for _, r := range results {
		if r.Label == target {
			n++
		}
	}
	return n
}

// RecallCurve returns recall after each retrieved image: out[i] is the
// fraction of all target-labelled images found within the first i+1 results.
// A random ranking yields the diagonal; better systems are more convex
// (Figure 4-5). The total relevant count is taken from the ranking itself,
// which covers the whole test set in the paper's protocol.
func RecallCurve(results []retrieval.Result, target string) []float64 {
	total := CountLabel(results, target)
	out := make([]float64, len(results))
	found := 0
	for i, r := range results {
		if r.Label == target {
			found++
		}
		if total > 0 {
			out[i] = float64(found) / float64(total)
		}
	}
	return out
}

// PrecisionRecall returns the precision-recall curve (Figure 4-6): one
// point per retrieved image, precision = correct-so-far / retrieved-so-far,
// recall = correct-so-far / total-correct.
func PrecisionRecall(results []retrieval.Result, target string) []PRPoint {
	total := CountLabel(results, target)
	out := make([]PRPoint, len(results))
	found := 0
	for i, r := range results {
		if r.Label == target {
			found++
		}
		p := PRPoint{Precision: float64(found) / float64(i+1)}
		if total > 0 {
			p.Recall = float64(found) / float64(total)
		}
		out[i] = p
	}
	return out
}

// AvgPrecisionWindow returns the mean precision over curve points whose
// recall lies in [lo, hi] — the summary measure of Figure 4-22 ("average
// precision value for recall between 0.3 and 0.4"). If the curve jumps over
// the window entirely, the precision at the first point with recall ≥ lo is
// used; an empty curve scores 0.
func AvgPrecisionWindow(pr []PRPoint, lo, hi float64) float64 {
	var sum float64
	var n int
	for _, p := range pr {
		if p.Recall >= lo && p.Recall <= hi {
			sum += p.Precision
			n++
		}
	}
	if n > 0 {
		return sum / float64(n)
	}
	for _, p := range pr {
		if p.Recall >= lo {
			return p.Precision
		}
	}
	return 0
}

// AveragePrecision returns the standard average precision: the mean of the
// precision values at each rank where a relevant image appears. It
// summarizes a whole PR curve in one number and equals 1.0 only for a
// perfect ranking.
func AveragePrecision(results []retrieval.Result, target string) float64 {
	total := CountLabel(results, target)
	if total == 0 {
		return 0
	}
	var sum float64
	found := 0
	for i, r := range results {
		if r.Label == target {
			found++
			sum += float64(found) / float64(i+1)
		}
	}
	return sum / float64(total)
}

// PrecisionAt returns precision within the first k results (0 if k <= 0).
func PrecisionAt(results []retrieval.Result, target string, k int) float64 {
	if k <= 0 {
		return 0
	}
	if k > len(results) {
		k = len(results)
	}
	found := 0
	for _, r := range results[:k] {
		if r.Label == target {
			found++
		}
	}
	return float64(found) / float64(k)
}

// RecallAt returns recall within the first k results.
func RecallAt(results []retrieval.Result, target string, k int) float64 {
	total := CountLabel(results, target)
	if total == 0 || k <= 0 {
		return 0
	}
	if k > len(results) {
		k = len(results)
	}
	found := 0
	for _, r := range results[:k] {
		if r.Label == target {
			found++
		}
	}
	return float64(found) / float64(total)
}

// Split partitions database indices into a small "potential training set"
// whose labels the simulated user may inspect, and the large held-out test
// set (§4.1).
type Split struct {
	Train []int
	Test  []int
}

// StratifiedSplit places trainFrac of each label's items (rounded, at least
// one when the label has any items) into the training pool, choosing
// uniformly at random with the given seed; the paper uses 20% per category.
// The split is deterministic for a fixed (labels, trainFrac, seed).
func StratifiedSplit(labels []string, trainFrac float64, seed int64) (Split, error) {
	if trainFrac < 0 || trainFrac > 1 {
		return Split{}, fmt.Errorf("eval: train fraction %v outside [0,1]", trainFrac)
	}
	byLabel := map[string][]int{}
	for i, lb := range labels {
		byLabel[lb] = append(byLabel[lb], i)
	}
	keys := make([]string, 0, len(byLabel))
	for k := range byLabel {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	rng := rand.New(rand.NewSource(seed))
	var sp Split
	for _, k := range keys {
		idx := byLabel[k]
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		nTrain := int(trainFrac*float64(len(idx)) + 0.5)
		if nTrain == 0 && trainFrac > 0 && len(idx) > 0 {
			nTrain = 1
		}
		if nTrain > len(idx) {
			nTrain = len(idx)
		}
		sp.Train = append(sp.Train, idx[:nTrain]...)
		sp.Test = append(sp.Test, idx[nTrain:]...)
	}
	sort.Ints(sp.Train)
	sort.Ints(sp.Test)
	return sp, nil
}
