package eval

import "milret/internal/retrieval"

// This file adds the classic text-retrieval summary metrics contemporary
// with the paper (TREC conventions), complementing the raw curves: they
// make cross-system comparisons one-glance without plotting.

// InterpolatedPrecision returns the interpolated precision at a recall
// level: the maximum precision over all curve points with recall ≥ r.
// Interpolation removes the sawtooth of raw PR curves (each miss dents
// precision, each hit partially restores it).
func InterpolatedPrecision(pr []PRPoint, r float64) float64 {
	best := 0.0
	for _, p := range pr {
		if p.Recall >= r && p.Precision > best {
			best = p.Precision
		}
	}
	return best
}

// ElevenPointPrecision returns the TREC 11-point interpolated precision
// values at recall 0.0, 0.1, …, 1.0.
func ElevenPointPrecision(pr []PRPoint) [11]float64 {
	var out [11]float64
	for i := 0; i <= 10; i++ {
		out[i] = InterpolatedPrecision(pr, float64(i)/10)
	}
	return out
}

// ElevenPointAverage is the mean of the 11-point interpolated precisions —
// a single-number summary close to average precision but smoother for
// small collections.
func ElevenPointAverage(pr []PRPoint) float64 {
	pts := ElevenPointPrecision(pr)
	var sum float64
	for _, p := range pts {
		sum += p
	}
	return sum / 11
}

// RPrecision returns the precision after exactly R images have been
// retrieved, where R is the number of relevant images in the collection.
// At that depth precision and recall coincide, making R-precision a
// natural single-operating-point summary.
func RPrecision(results []retrieval.Result, target string) float64 {
	return PrecisionAt(results, target, CountLabel(results, target))
}

// CategoryReport summarizes a ranking against every label present in it:
// one row per category treating that category as the target. It answers
// "which categories does this concept confuse with the target" at a glance.
type CategoryReport struct {
	Label string
	// Count is the number of images with this label in the ranking.
	Count int
	// MeanRank is the average position (1-based) of this label's images.
	MeanRank float64
	// InTopK is how many of this label's images appear in the first K.
	InTopK int
}

// CategoryBreakdown computes a CategoryReport per label over the first k
// positions (k ≤ 0 means the full ranking length), ordered by ascending
// mean rank — the target category should come first for a good concept.
func CategoryBreakdown(results []retrieval.Result, k int) []CategoryReport {
	if k <= 0 || k > len(results) {
		k = len(results)
	}
	type acc struct {
		count, inTopK int
		rankSum       float64
	}
	byLabel := map[string]*acc{}
	for i, r := range results {
		a := byLabel[r.Label]
		if a == nil {
			a = &acc{}
			byLabel[r.Label] = a
		}
		a.count++
		a.rankSum += float64(i + 1)
		if i < k {
			a.inTopK++
		}
	}
	out := make([]CategoryReport, 0, len(byLabel))
	for lb, a := range byLabel {
		out = append(out, CategoryReport{
			Label:    lb,
			Count:    a.count,
			MeanRank: a.rankSum / float64(a.count),
			InTopK:   a.inTopK,
		})
	}
	// Insertion sort by mean rank, ties by label for determinism.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := out[j-1], out[j]
			if b.MeanRank < a.MeanRank || (b.MeanRank == a.MeanRank && b.Label < a.Label) {
				out[j-1], out[j] = b, a
			} else {
				break
			}
		}
	}
	return out
}
