package eval

import (
	"fmt"
	"math/rand"
	"testing"

	"milret/internal/core"
	"milret/internal/mat"
	"milret/internal/mil"
	"milret/internal/retrieval"
)

// clusteredItem builds an image-like bag: one instance near its category's
// cluster center plus distractor instances.
func clusteredItem(r *rand.Rand, id, label string, center mat.Vector, distractors int) retrieval.Item {
	b := &mil.Bag{ID: id}
	near := center.Clone()
	for k := range near {
		near[k] += r.NormFloat64() * 0.3
	}
	b.Instances = append(b.Instances, near)
	for j := 0; j < distractors; j++ {
		v := mat.NewVector(len(center))
		for k := range v {
			v[k] = r.NormFloat64() * 6
		}
		b.Instances = append(b.Instances, v)
	}
	return retrieval.Item{ID: id, Label: label, Bag: b}
}

var clusterCenters = map[string]mat.Vector{
	"alpha": {5, 0},
	"beta":  {0, 5},
	"gamma": {-5, -5},
}

func clusteredDBs(t *testing.T, seed int64, poolPer, testPer int) (pool, test *retrieval.Database) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	pool = retrieval.NewDatabase()
	test = retrieval.NewDatabase()
	for _, label := range []string{"alpha", "beta", "gamma"} {
		for i := 0; i < poolPer; i++ {
			it := clusteredItem(r, fmt.Sprintf("pool-%s-%d", label, i), label, clusterCenters[label], 2)
			if err := pool.Add(it); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < testPer; i++ {
			it := clusteredItem(r, fmt.Sprintf("test-%s-%d", label, i), label, clusterCenters[label], 2)
			if err := test.Add(it); err != nil {
				t.Fatal(err)
			}
		}
	}
	return pool, test
}

func TestRunProtocolRetrievesTarget(t *testing.T) {
	pool, test := clusteredDBs(t, 1, 12, 20)
	cfg := ProtocolConfig{
		Target: "alpha",
		Train:  core.Config{Mode: core.Identical},
		Seed:   7,
	}
	res, err := RunProtocol(pool, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Concept == nil {
		t.Fatalf("nil concept")
	}
	if len(res.TestRanking) != test.Len() {
		t.Fatalf("test ranking covers %d of %d", len(res.TestRanking), test.Len())
	}
	ap := AveragePrecision(res.TestRanking, "alpha")
	if ap < 0.7 {
		t.Fatalf("average precision %v too low for planted clusters", ap)
	}
	// All positives must really be alphas from the pool.
	for _, id := range res.PositiveIDs {
		it, ok := pool.ByID(id)
		if !ok || it.Label != "alpha" {
			t.Fatalf("positive example %q is not an alpha pool item", id)
		}
	}
}

func TestRunProtocolFeedbackGrowsNegatives(t *testing.T) {
	pool, test := clusteredDBs(t, 2, 12, 5)
	cfg := ProtocolConfig{
		Target: "alpha",
		Rounds: 3,
		Train:  core.Config{Mode: core.Identical},
		Seed:   3,
	}
	res, err := RunProtocol(pool, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PoolRankings) == 0 || len(res.PoolRankings) > 3 {
		t.Fatalf("pool rankings per round: %d", len(res.PoolRankings))
	}
	if len(res.NegativeIDs) <= 5 {
		t.Fatalf("feedback added no negatives: %d", len(res.NegativeIDs))
	}
	// No example may be duplicated.
	seen := map[string]bool{}
	for _, id := range append(append([]string{}, res.PositiveIDs...), res.NegativeIDs...) {
		if seen[id] {
			t.Fatalf("example %q used twice", id)
		}
		seen[id] = true
	}
	// Pool rankings must exclude the examples in use at their round.
	for _, id := range res.PositiveIDs {
		for _, r := range res.PoolRankings[0] {
			if r.ID == id {
				t.Fatalf("initial example %q appears in round-1 ranking", id)
			}
		}
	}
}

func TestRunProtocolDeterministic(t *testing.T) {
	run := func() *ProtocolResult {
		pool, test := clusteredDBs(t, 3, 10, 8)
		res, err := RunProtocol(pool, test, ProtocolConfig{
			Target: "beta",
			Train:  core.Config{Mode: core.Identical},
			Seed:   11,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.TestRanking) != len(b.TestRanking) {
		t.Fatalf("ranking lengths differ")
	}
	for i := range a.TestRanking {
		if a.TestRanking[i] != b.TestRanking[i] {
			t.Fatalf("protocol is not deterministic at rank %d", i)
		}
	}
}

func TestRunProtocolErrors(t *testing.T) {
	pool, test := clusteredDBs(t, 4, 6, 3)
	if _, err := RunProtocol(pool, test, ProtocolConfig{}); err == nil {
		t.Fatalf("empty target accepted")
	}
	if _, err := RunProtocol(pool, test, ProtocolConfig{Target: "alpha", NumPos: 100}); err == nil {
		t.Fatalf("too many positives accepted")
	}
	if _, err := RunProtocol(pool, test, ProtocolConfig{Target: "alpha", NumNeg: 100}); err == nil {
		t.Fatalf("too many negatives accepted")
	}
	if _, err := RunProtocol(pool, test, ProtocolConfig{Target: "nosuch"}); err == nil {
		t.Fatalf("unknown target accepted")
	}
}

func TestSplitDatabases(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	var items []retrieval.Item
	labels := []string{"a", "a", "b", "b", "b", "a"}
	for i, lb := range labels {
		items = append(items, clusteredItem(r, fmt.Sprintf("i%d", i), lb, mat.Vector{0, 0}, 1))
	}
	sp := Split{Train: []int{0, 2}, Test: []int{1, 3, 4, 5}}
	pool, test, err := SplitDatabases(items, sp)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Len() != 2 || test.Len() != 4 {
		t.Fatalf("sizes %d/%d", pool.Len(), test.Len())
	}
	if _, _, err := SplitDatabases(items, Split{Train: []int{99}}); err == nil {
		t.Fatalf("out-of-range index accepted")
	}
}
