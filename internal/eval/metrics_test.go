package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"milret/internal/retrieval"
)

func TestInterpolatedPrecisionMonotone(t *testing.T) {
	pr := []PRPoint{
		{Recall: 0.2, Precision: 0.5},
		{Recall: 0.4, Precision: 0.8}, // later but higher: interpolation keeps it
		{Recall: 0.9, Precision: 0.3},
	}
	if got := InterpolatedPrecision(pr, 0.1); got != 0.8 {
		t.Fatalf("interp@0.1 = %v, want 0.8 (max over recall ≥ 0.1)", got)
	}
	if got := InterpolatedPrecision(pr, 0.5); got != 0.3 {
		t.Fatalf("interp@0.5 = %v, want 0.3", got)
	}
	if got := InterpolatedPrecision(pr, 0.95); got != 0 {
		t.Fatalf("interp beyond max recall = %v, want 0", got)
	}
}

// Property: 11-point interpolated precision is non-increasing in recall.
func TestQuickElevenPointNonIncreasing(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(40)
		labels := make([]string, n)
		for i := range labels {
			if r.Float64() < 0.3 {
				labels[i] = "t"
			} else {
				labels[i] = "o"
			}
		}
		pr := PrecisionRecall(res(labels...), "t")
		pts := ElevenPointPrecision(pr)
		for i := 1; i < len(pts); i++ {
			if pts[i] > pts[i-1]+1e-12 {
				return false
			}
		}
		avg := ElevenPointAverage(pr)
		return avg >= 0 && avg <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestElevenPointPerfectRanking(t *testing.T) {
	pr := PrecisionRecall(res("x", "x", "y", "y"), "x")
	pts := ElevenPointPrecision(pr)
	for i, p := range pts {
		if p != 1 {
			t.Fatalf("perfect ranking interp@%d = %v", i, p)
		}
	}
	if avg := ElevenPointAverage(pr); avg != 1 {
		t.Fatalf("perfect 11-point average = %v", avg)
	}
}

func TestRPrecision(t *testing.T) {
	// 2 relevant images; after 2 retrieved, 1 is relevant → R-precision 0.5.
	if got := RPrecision(res("x", "y", "x"), "x"); got != 0.5 {
		t.Fatalf("R-precision = %v, want 0.5", got)
	}
	if got := RPrecision(res("y", "y"), "x"); got != 0 {
		t.Fatalf("no-relevant R-precision = %v", got)
	}
	// Perfect prefix.
	if got := RPrecision(res("x", "x", "y"), "x"); got != 1 {
		t.Fatalf("perfect R-precision = %v", got)
	}
}

func TestCategoryBreakdown(t *testing.T) {
	results := []retrieval.Result{
		{ID: "1", Label: "a", Dist: 1},
		{ID: "2", Label: "a", Dist: 2},
		{ID: "3", Label: "b", Dist: 3},
		{ID: "4", Label: "b", Dist: 4},
	}
	rep := CategoryBreakdown(results, 2)
	if len(rep) != 2 {
		t.Fatalf("got %d categories", len(rep))
	}
	if rep[0].Label != "a" || rep[1].Label != "b" {
		t.Fatalf("ordering wrong: %+v", rep)
	}
	if rep[0].MeanRank != 1.5 || rep[1].MeanRank != 3.5 {
		t.Fatalf("mean ranks wrong: %+v", rep)
	}
	if rep[0].InTopK != 2 || rep[1].InTopK != 0 {
		t.Fatalf("top-k counts wrong: %+v", rep)
	}
}

func TestCategoryBreakdownFullRankingDefault(t *testing.T) {
	results := []retrieval.Result{
		{ID: "1", Label: "a", Dist: 1},
		{ID: "2", Label: "b", Dist: 2},
	}
	rep := CategoryBreakdown(results, 0)
	for _, r := range rep {
		if r.InTopK != r.Count {
			t.Fatalf("k=0 should cover everything: %+v", rep)
		}
	}
	if len(CategoryBreakdown(nil, 5)) != 0 {
		t.Fatalf("empty ranking should give empty report")
	}
}

// Property: Σ counts over the breakdown equals the ranking length, and
// mean ranks are within [1, n].
func TestQuickCategoryBreakdownConsistent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		labels := make([]string, n)
		for i := range labels {
			labels[i] = string(rune('a' + r.Intn(4)))
		}
		rep := CategoryBreakdown(res(labels...), 1+r.Intn(n))
		total := 0
		for _, c := range rep {
			total += c.Count
			if c.MeanRank < 1 || c.MeanRank > float64(n) {
				return false
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestInterpolatedAtLeastRaw(t *testing.T) {
	labels := []string{"y", "x", "y", "x", "x", "y"}
	pr := PrecisionRecall(res(labels...), "x")
	for _, p := range pr {
		if ip := InterpolatedPrecision(pr, p.Recall); ip < p.Precision-1e-12 {
			t.Fatalf("interpolated precision %v below raw %v at recall %v", ip, p.Precision, p.Recall)
		}
	}
	if math.IsNaN(ElevenPointAverage(pr)) {
		t.Fatalf("NaN 11-point average")
	}
}
