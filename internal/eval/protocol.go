package eval

import (
	"fmt"
	"math/rand"

	"milret/internal/core"
	"milret/internal/mil"
	"milret/internal/retrieval"
)

// ProtocolConfig describes one simulated retrieval session following §4.1:
// initial positive and negative examples are drawn from the potential
// training set, the system trains, ranks the training pool, promotes the
// top false positives to negative examples, and repeats; the final concept
// ranks the held-out test set.
type ProtocolConfig struct {
	// Target is the category the simulated user wants (e.g. "waterfall").
	Target string
	// NumPos / NumNeg are the initial example counts (default 5 each,
	// matching the sample runs of Figures 4-3/4-4).
	NumPos, NumNeg int
	// Rounds is the number of training rounds (default 3: initial training
	// plus two feedback rounds, §4.1).
	Rounds int
	// FalsePositivesPerRound is how many top-ranked wrong images become new
	// negatives after each round (default 5).
	FalsePositivesPerRound int
	// Train configures the Diverse Density runs.
	Train core.Config
	// Seed drives the choice of initial examples.
	Seed int64
}

func (c ProtocolConfig) withDefaults() ProtocolConfig {
	if c.NumPos <= 0 {
		c.NumPos = 5
	}
	if c.NumNeg <= 0 {
		c.NumNeg = 5
	}
	if c.Rounds <= 0 {
		c.Rounds = 3
	}
	if c.FalsePositivesPerRound <= 0 {
		c.FalsePositivesPerRound = 5
	}
	return c
}

// ProtocolResult is the outcome of one simulated session.
type ProtocolResult struct {
	// Concept is the final trained concept.
	Concept *core.Concept
	// TestRanking is the final ranking of the test database.
	TestRanking []retrieval.Result
	// PoolRankings records the training-pool ranking after each round
	// (before new negatives were added), for Figure 4-3-style inspection.
	PoolRankings [][]retrieval.Result
	// PositiveIDs and NegativeIDs are the example images used, in the
	// order they were added (negatives grow across rounds).
	PositiveIDs, NegativeIDs []string
}

// RunProtocol executes the simulated session against a training pool and a
// held-out test set. Both databases must already contain preprocessed bags;
// pool labels are consulted (the simulated user "knows" them, §4.1), test
// labels are used only for scoring by the caller.
func RunProtocol(pool, test *retrieval.Database, cfg ProtocolConfig) (*ProtocolResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Target == "" {
		return nil, fmt.Errorf("eval: protocol target category is empty")
	}

	// Initial examples: NumPos target images and NumNeg non-target images,
	// drawn without replacement from the pool with a seeded shuffle.
	items := pool.Items()
	var posIdx, negIdx []int
	for i, it := range items {
		if it.Label == cfg.Target {
			posIdx = append(posIdx, i)
		} else {
			negIdx = append(negIdx, i)
		}
	}
	if len(posIdx) < cfg.NumPos {
		return nil, fmt.Errorf("eval: pool has %d %q images, need %d positives", len(posIdx), cfg.Target, cfg.NumPos)
	}
	if len(negIdx) < cfg.NumNeg {
		return nil, fmt.Errorf("eval: pool has %d non-%q images, need %d negatives", len(negIdx), cfg.Target, cfg.NumNeg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rng.Shuffle(len(posIdx), func(i, j int) { posIdx[i], posIdx[j] = posIdx[j], posIdx[i] })
	rng.Shuffle(len(negIdx), func(i, j int) { negIdx[i], negIdx[j] = negIdx[j], negIdx[i] })

	ds := &mil.Dataset{}
	res := &ProtocolResult{}
	used := map[string]bool{}
	for _, i := range posIdx[:cfg.NumPos] {
		ds.Positive = append(ds.Positive, items[i].Bag)
		res.PositiveIDs = append(res.PositiveIDs, items[i].ID)
		used[items[i].ID] = true
	}
	for _, i := range negIdx[:cfg.NumNeg] {
		ds.Negative = append(ds.Negative, items[i].Bag)
		res.NegativeIDs = append(res.NegativeIDs, items[i].ID)
		used[items[i].ID] = true
	}

	var concept *core.Concept
	for round := 0; round < cfg.Rounds; round++ {
		var err error
		concept, err = core.Train(ds, cfg.Train)
		if err != nil {
			return nil, fmt.Errorf("eval: round %d training: %w", round+1, err)
		}
		// Rank the pool excluding current examples; the simulated user
		// inspects the head of the ranking (§4.1).
		exclude := make(map[string]bool, len(used))
		for id := range used {
			exclude[id] = true
		}
		ranking := retrieval.Rank(pool, concept, retrieval.Options{
			Exclude:     exclude,
			Parallelism: cfg.Train.Parallelism,
		})
		res.PoolRankings = append(res.PoolRankings, ranking)
		if round == cfg.Rounds-1 {
			break // final round: no more feedback
		}
		// Promote the top false positives to negative examples.
		added := 0
		for _, r := range ranking {
			if added == cfg.FalsePositivesPerRound {
				break
			}
			if r.Label == cfg.Target {
				continue
			}
			it, ok := pool.ByID(r.ID)
			if !ok {
				return nil, fmt.Errorf("eval: ranked ID %q vanished from pool", r.ID)
			}
			ds.Negative = append(ds.Negative, it.Bag)
			res.NegativeIDs = append(res.NegativeIDs, it.ID)
			used[it.ID] = true
			added++
		}
		if added == 0 {
			// The entire remaining pool head is correct: nothing to learn
			// from; stop the feedback early with the current concept.
			break
		}
	}

	res.Concept = concept
	res.TestRanking = retrieval.Rank(test, concept, retrieval.Options{
		Parallelism: cfg.Train.Parallelism,
	})
	return res, nil
}

// SplitDatabases materializes a Split over a record list into pool and test
// databases; items is indexed by the split's indices.
func SplitDatabases(items []retrieval.Item, sp Split) (pool, test *retrieval.Database, err error) {
	pool = retrieval.NewDatabase()
	test = retrieval.NewDatabase()
	for _, i := range sp.Train {
		if i < 0 || i >= len(items) {
			return nil, nil, fmt.Errorf("eval: split train index %d out of range", i)
		}
		if err := pool.Add(items[i]); err != nil {
			return nil, nil, err
		}
	}
	for _, i := range sp.Test {
		if i < 0 || i >= len(items) {
			return nil, nil, fmt.Errorf("eval: split test index %d out of range", i)
		}
		if err := test.Add(items[i]); err != nil {
			return nil, nil, err
		}
	}
	return pool, test, nil
}
