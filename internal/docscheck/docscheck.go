// Package docscheck keeps the repository's documentation honest: it
// parses the markdown docs for intra-repo links, generated sections,
// and CLI flag tables, so tests (and the CI docs job) can fail when a
// link target disappears, when docs/API.md's route table drifts from
// server.Routes(), or when a flag table stops matching what the built
// `milret` binary actually registers. The checkers are pure functions
// over file contents; the tests in this package apply them to the
// repo's own docs.
package docscheck

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"unicode"

	"milret/internal/server"
)

// Link is one markdown link found in a file, split into the path part
// and the #fragment (either may be empty, not both).
type Link struct {
	File     string // path the link was found in
	Line     int    // 1-based line number
	Target   string // path part, "" for a same-file #anchor link
	Fragment string // anchor without the '#', "" when absent
}

var linkRE = regexp.MustCompile(`!?\[[^\]]*\]\(([^()\s]+)\)`)

// Links extracts intra-repo markdown links from md, attributing them
// to file. External schemes (http, https, mailto) are skipped, as are
// fenced and indented code blocks — code examples legitimately contain
// `a[i](x)`-shaped text that is not a link.
func Links(file string, md []byte) []Link {
	var out []Link
	inFence := false
	for i, line := range strings.Split(string(md), "\n") {
		trimmed := strings.TrimLeft(line, " ")
		if strings.HasPrefix(trimmed, "```") || strings.HasPrefix(trimmed, "~~~") {
			inFence = !inFence
			continue
		}
		if inFence || strings.HasPrefix(line, "\t") || strings.HasPrefix(line, "    ") {
			continue
		}
		for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			path, frag, _ := strings.Cut(target, "#")
			out = append(out, Link{File: file, Line: i + 1, Target: path, Fragment: frag})
		}
	}
	return out
}

// Slug converts a heading to its GitHub-style anchor: lowercased, with
// backticks dropped, punctuation removed, and spaces turned into
// hyphens.
func Slug(heading string) string {
	heading = strings.ToLower(strings.TrimSpace(heading))
	var b strings.Builder
	for _, r := range heading {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == '-' || r == '_':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}

var headingRE = regexp.MustCompile(`^#{1,6}\s+(.+?)\s*#*\s*$`)

// HeadingSlugs returns the anchor slugs of every markdown heading in
// md (fenced code blocks excluded).
func HeadingSlugs(md []byte) map[string]bool {
	slugs := make(map[string]bool)
	inFence := false
	for _, line := range strings.Split(string(md), "\n") {
		if strings.HasPrefix(strings.TrimLeft(line, " "), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		if m := headingRE.FindStringSubmatch(line); m != nil {
			slugs[Slug(m[1])] = true
		}
	}
	return slugs
}

// CheckLinks verifies every intra-repo link in the given files (paths
// relative to root): the path part must exist on disk, and a #fragment
// into a markdown file must name one of its heading anchors. It
// returns one human-readable problem per broken link.
func CheckLinks(root string, files []string) []string {
	var problems []string
	for _, rel := range files {
		md, err := os.ReadFile(filepath.Join(root, rel))
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: %v", rel, err))
			continue
		}
		for _, l := range Links(rel, md) {
			targetRel := rel // same-file anchor
			if l.Target != "" {
				targetRel = filepath.Join(filepath.Dir(rel), l.Target)
				if _, err := os.Stat(filepath.Join(root, targetRel)); err != nil {
					problems = append(problems, fmt.Sprintf("%s:%d: broken link %q: %v", l.File, l.Line, l.Target, err))
					continue
				}
			}
			if l.Fragment == "" {
				continue
			}
			if !strings.HasSuffix(targetRel, ".md") {
				continue // anchors into non-markdown files are not ours to judge
			}
			targetMD, err := os.ReadFile(filepath.Join(root, targetRel))
			if err != nil {
				problems = append(problems, fmt.Sprintf("%s:%d: %v", l.File, l.Line, err))
				continue
			}
			if !HeadingSlugs(targetMD)[l.Fragment] {
				problems = append(problems, fmt.Sprintf("%s:%d: anchor #%s not found in %s", l.File, l.Line, l.Fragment, targetRel))
			}
		}
	}
	return problems
}

// Section extracts the body between `<!-- generated:name -->` and
// `<!-- /generated:name -->` markers.
func Section(md []byte, name string) (string, error) {
	open := "<!-- generated:" + name + " -->"
	close := "<!-- /generated:" + name + " -->"
	text := string(md)
	i := strings.Index(text, open)
	if i < 0 {
		return "", fmt.Errorf("marker %q not found", open)
	}
	rest := text[i+len(open):]
	j := strings.Index(rest, close)
	if j < 0 {
		return "", fmt.Errorf("marker %q not found", close)
	}
	return strings.TrimSpace(rest[:j]), nil
}

// RouteTable renders the /v1 route table as the markdown body the
// `generated:routes` section of docs/API.md must contain verbatim.
func RouteTable(routes []server.Route) string {
	var b strings.Builder
	b.WriteString("| Route | Methods | Purpose |\n")
	b.WriteString("| --- | --- | --- |\n")
	for _, r := range routes {
		fmt.Fprintf(&b, "| `%s` | %s | %s |\n", r.Pattern, strings.Join(r.Methods, ", "), r.Doc)
	}
	return strings.TrimSpace(b.String())
}

var (
	subHeadingRE = regexp.MustCompile("^#{1,6} .*`milret ([a-z-]+)`")
	flagRowRE    = regexp.MustCompile("^\\|\\s*`-([a-z-]+)`")
	anyHeadingRE = regexp.MustCompile(`^#{1,6} `)
)

// FlagTables parses the CLI flag tables of a markdown document: under
// each heading containing `milret <sub>`, rows of the form
// "| `-flag` | ... |" contribute flag names until the next heading.
// Subcommands whose section carries no flag rows are omitted.
func FlagTables(md []byte) map[string][]string {
	tables := make(map[string][]string)
	current := ""
	for _, line := range strings.Split(string(md), "\n") {
		if m := subHeadingRE.FindStringSubmatch(line); m != nil {
			current = m[1]
			continue
		}
		if anyHeadingRE.MatchString(line) {
			current = ""
			continue
		}
		if current == "" {
			continue
		}
		if m := flagRowRE.FindStringSubmatch(line); m != nil {
			tables[current] = append(tables[current], m[1])
		}
	}
	return tables
}

var helpFlagRE = regexp.MustCompile(`(?m)^  -([a-z-]+)`)

// HelpFlags parses the flag names out of a flag.FlagSet's -help
// output.
func HelpFlags(help string) []string {
	var out []string
	for _, m := range helpFlagRE.FindAllStringSubmatch(help, -1) {
		out = append(out, m[1])
	}
	return out
}

// UsageSubcommands parses the subcommand list out of the bare
// `milret` usage line ("usage: milret <a|b|c> [flags]").
func UsageSubcommands(usage string) []string {
	i := strings.Index(usage, "<")
	j := strings.Index(usage, ">")
	if i < 0 || j < i {
		return nil
	}
	return strings.Split(usage[i+1:j], "|")
}
