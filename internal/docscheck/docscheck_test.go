package docscheck

import (
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"milret/internal/server"
)

// repoRoot is where the checked docs live, relative to this package.
const repoRoot = "../.."

// docFiles are the repo docs the link checker covers. PAPERS.md and
// SNIPPETS.md are excluded deliberately: they are externally generated
// reference dumps carrying dangling artifact links we do not own.
func docFiles(t *testing.T) []string {
	t.Helper()
	files := []string{"README.md", "ROADMAP.md", "CHANGES.md", "PAPER.md"}
	docs, err := filepath.Glob(filepath.Join(repoRoot, "docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) < 3 {
		t.Fatalf("expected at least ARCHITECTURE/API/OPERATIONS under docs/, found %d files", len(docs))
	}
	for _, d := range docs {
		rel, err := filepath.Rel(repoRoot, d)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, rel)
	}
	return files
}

// TestRepoLinks fails on any intra-repo markdown link whose target
// file or heading anchor does not exist.
func TestRepoLinks(t *testing.T) {
	for _, p := range CheckLinks(repoRoot, docFiles(t)) {
		t.Error(p)
	}
}

// TestREADMELinksAllDocs pins the acceptance criterion: README must
// link to all three documentation files.
func TestREADMELinksAllDocs(t *testing.T) {
	md, err := os.ReadFile(filepath.Join(repoRoot, "README.md"))
	if err != nil {
		t.Fatal(err)
	}
	linked := make(map[string]bool)
	for _, l := range Links("README.md", md) {
		linked[l.Target] = true
	}
	for _, want := range []string{"docs/ARCHITECTURE.md", "docs/API.md", "docs/OPERATIONS.md"} {
		if !linked[want] {
			t.Errorf("README.md does not link to %s", want)
		}
	}
}

// TestAPIRouteTableMatchesServer regenerates the route table from
// server.Routes() and requires docs/API.md's generated section to
// match byte for byte — the doc cannot drift from the mux.
func TestAPIRouteTableMatchesServer(t *testing.T) {
	md, err := os.ReadFile(filepath.Join(repoRoot, "docs", "API.md"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Section(md, "routes")
	if err != nil {
		t.Fatalf("docs/API.md: %v", err)
	}
	want := RouteTable(server.Routes())
	if got != want {
		t.Errorf("docs/API.md generated:routes section is stale.\n--- doc ---\n%s\n--- server.Routes() ---\n%s\nRegenerate the section between the markers from the table above.", got, want)
	}
}

// TestCLIFlagTablesMatchBinary builds cmd/milret and checks every
// documented flag table (docs/API.md and README.md) against the flags
// the binary actually registers — both directions: a documented flag
// that was removed and a new flag left undocumented each fail. It also
// requires docs/API.md to document every subcommand the binary's usage
// line advertises.
func TestCLIFlagTablesMatchBinary(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the milret binary; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "milret")
	build := exec.Command("go", "build", "-o", bin, "milret/cmd/milret")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// The bare binary prints "usage: milret <a|b|...> [flags]" and
	// exits 2; that line names the subcommand universe.
	usageOut, _ := exec.Command(bin).CombinedOutput()
	subs := UsageSubcommands(string(usageOut))
	if len(subs) == 0 {
		t.Fatalf("could not parse subcommands from usage: %q", usageOut)
	}

	apiMD, err := os.ReadFile(filepath.Join(repoRoot, "docs", "API.md"))
	if err != nil {
		t.Fatal(err)
	}
	apiTables := FlagTables(apiMD)
	for _, sub := range subs {
		if len(apiTables[sub]) == 0 {
			t.Errorf("docs/API.md documents no flags for `milret %s`", sub)
		}
	}

	binaryFlags := func(sub string) []string {
		helpOut, _ := exec.Command(bin, sub, "-h").CombinedOutput()
		flags := HelpFlags(string(helpOut))
		if len(flags) == 0 {
			t.Fatalf("milret %s -h listed no flags:\n%s", sub, helpOut)
		}
		sort.Strings(flags)
		return flags
	}

	check := func(docName string, tables map[string][]string) {
		for sub, documented := range tables {
			sort.Strings(documented)
			got := binaryFlags(sub)
			if !reflect.DeepEqual(documented, got) {
				t.Errorf("%s flag table for `milret %s` drifted:\n  documented: %v\n  binary:     %v", docName, sub, documented, got)
			}
		}
	}
	check("docs/API.md", apiTables)

	readmeMD, err := os.ReadFile(filepath.Join(repoRoot, "README.md"))
	if err != nil {
		t.Fatal(err)
	}
	check("README.md", FlagTables(readmeMD))
}

// --- parser unit tests -------------------------------------------------

func TestLinksParsing(t *testing.T) {
	md := []byte("See [arch](docs/ARCHITECTURE.md) and [ops](docs/OPERATIONS.md#resharding).\n" +
		"External [go](https://go.dev) and [mail](mailto:x@y.z) are skipped.\n" +
		"Same-file [anchor](#heading).\n" +
		"```\ncode [not](a-link.md)\n```\n" +
		"    indented [not](code.md) either\n" +
		"![diagram](img/flow.png)\n")
	got := Links("f.md", md)
	want := []Link{
		{File: "f.md", Line: 1, Target: "docs/ARCHITECTURE.md"},
		{File: "f.md", Line: 1, Target: "docs/OPERATIONS.md", Fragment: "resharding"},
		{File: "f.md", Line: 3, Fragment: "heading"},
		{File: "f.md", Line: 8, Target: "img/flow.png"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Links:\n got %+v\nwant %+v", got, want)
	}
}

func TestSlug(t *testing.T) {
	for in, want := range map[string]string{
		"Resharding":        "resharding",
		"GET /v1/healthz":   "get-v1healthz",
		"`milret gen`":      "milret-gen",
		"Kernel & batching": "kernel--batching",
		"The perf gate":     "the-perf-gate",
		"Shard RPC: the `MILRETR1` frame protocol": "shard-rpc-the-milretr1-frame-protocol",
	} {
		if got := Slug(in); got != want {
			t.Errorf("Slug(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSectionExtraction(t *testing.T) {
	md := []byte("x\n<!-- generated:routes -->\nBODY\nLINES\n<!-- /generated:routes -->\ny\n")
	got, err := Section(md, "routes")
	if err != nil || got != "BODY\nLINES" {
		t.Errorf("Section = %q, %v", got, err)
	}
	if _, err := Section(md, "missing"); err == nil {
		t.Error("Section found a marker that does not exist")
	}
	if _, err := Section([]byte("<!-- generated:x -->"), "x"); err == nil {
		t.Error("Section accepted an unclosed marker")
	}
}

func TestFlagTableParsing(t *testing.T) {
	md := []byte("### `milret gen`\n\nText.\n\n| Flag | Default | Meaning |\n| --- | --- | --- |\n| `-kind` | `scenes` | corpus kind |\n| `-dir` | `corpus` | output |\n\n### Unrelated heading\n\n| `-not-a-flag` | x | outside any subcommand section |\n\n#### `milret reshard`\n| `-src` | | source |\n")
	got := FlagTables(md)
	want := map[string][]string{"gen": {"kind", "dir"}, "reshard": {"src"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("FlagTables = %v, want %v", got, want)
	}
}

func TestHelpFlagsParsing(t *testing.T) {
	help := "Usage of gen:\n  -dir string\n    \toutput directory (default \"corpus\")\n  -kind string\n    \tcorpus kind (default \"scenes\")\n  -per-category int\n    \timages per category\n"
	got := HelpFlags(help)
	want := []string{"dir", "kind", "per-category"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("HelpFlags = %v, want %v", got, want)
	}
}

func TestUsageSubcommands(t *testing.T) {
	got := UsageSubcommands("usage: milret <gen|build|serve> [flags]")
	if !reflect.DeepEqual(got, []string{"gen", "build", "serve"}) {
		t.Errorf("UsageSubcommands = %v", got)
	}
}
