// Package region implements the region-selection scheme of §3.2: every image
// is covered by a fixed family of overlapping sub-rectangles, each of which
// becomes (with its left-right mirror) one or two instances in the image's
// bag. The paper's default family has 20 regions (Figure 3-5, 40 instances
// per bag); smaller (9 → 18 instances) and larger (42 → 84 instances)
// families reproduce the instances-per-bag sweep of Figure 4-18.
//
// Regions are expressed in fractional image coordinates so the same family
// applies to any image size; low-variance regions are filtered out before
// bag generation because they are unlikely to be interesting (§3.2).
package region

import (
	"fmt"
	"math"
	"sort"
)

// Rect is a region in fractional image coordinates: the half-open rectangle
// [X0, X1) × [Y0, Y1) with all coordinates in [0, 1]. X grows rightwards and
// Y downwards, matching pixel coordinates.
type Rect struct {
	X0, Y0, X1, Y1 float64
	// Name identifies the region for diagnostics ("whole", "q-tl", ...).
	Name string
}

// Valid reports whether r is a non-empty rectangle inside the unit square.
func (r Rect) Valid() bool {
	return r.X0 >= 0 && r.Y0 >= 0 && r.X1 <= 1 && r.Y1 <= 1 && r.X0 < r.X1 && r.Y0 < r.Y1
}

// Area returns the fractional area of r.
func (r Rect) Area() float64 {
	return (r.X1 - r.X0) * (r.Y1 - r.Y0)
}

// Pixels maps r onto a w×h pixel grid, returning the half-open pixel
// rectangle [x0, x1) × [y0, y1). The result always contains at least one
// pixel for a valid region on a non-empty image. Both endpoints round
// half-to-even so that the mapping commutes with left-right mirroring
// (round(w−a) == w−round(a)); without this, a region and its mirror could
// cover pixel rectangles of different widths and the mirror instances of
// §3.2 would not be exact mirrors.
func (r Rect) Pixels(w, h int) (x0, y0, x1, y1 int) {
	x0 = int(math.RoundToEven(r.X0 * float64(w)))
	y0 = int(math.RoundToEven(r.Y0 * float64(h)))
	x1 = int(math.RoundToEven(r.X1 * float64(w)))
	y1 = int(math.RoundToEven(r.Y1 * float64(h)))
	if x1 > w {
		x1 = w
	}
	if y1 > h {
		y1 = h
	}
	if x1 <= x0 {
		x1 = x0 + 1
		if x1 > w {
			x0, x1 = w-1, w
		}
	}
	if y1 <= y0 {
		y1 = y0 + 1
		if y1 > h {
			y0, y1 = h-1, h
		}
	}
	return x0, y0, x1, y1
}

// Mirror returns the region that corresponds to r in the left-right mirrored
// image: x-extent reflected about the vertical centre line.
func (r Rect) Mirror() Rect {
	return Rect{X0: 1 - r.X1, Y0: r.Y0, X1: 1 - r.X0, Y1: r.Y1, Name: r.Name + "-lr"}
}

func (r Rect) String() string {
	return fmt.Sprintf("%s[%.2f,%.2f,%.2f,%.2f]", r.Name, r.X0, r.Y0, r.X1, r.Y1)
}

// SetSize selects one of the three region families studied in Figure 4-18,
// identified by the number of instances per bag it induces (two instances —
// original and mirror — per region).
type SetSize int

const (
	// Small is 9 regions → up to 18 instances per bag.
	Small SetSize = 9
	// Default is the paper's 20 regions (Figure 3-5) → up to 40 instances.
	Default SetSize = 20
	// Large is 42 regions → up to 84 instances per bag.
	Large SetSize = 42
)

// Set returns the region family of the requested size. The returned slice is
// freshly allocated and sorted by name for determinism. Unknown sizes return
// an error so configuration typos fail loudly.
func Set(size SetSize) ([]Rect, error) {
	var rs []Rect
	switch size {
	case Small:
		rs = smallSet()
	case Default:
		rs = defaultSet()
	case Large:
		rs = largeSet()
	default:
		return nil, fmt.Errorf("region: no region family with %d regions (have 9, 20, 42)", size)
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].Name < rs[j].Name })
	return rs, nil
}

// MustSet is Set for statically known sizes; it panics on error.
func MustSet(size SetSize) []Rect {
	rs, err := Set(size)
	if err != nil {
		panic(err)
	}
	return rs
}

// smallSet: whole image, four halves, four quadrants — 9 regions.
func smallSet() []Rect {
	return append(baseNine(), nil...)
}

func baseNine() []Rect {
	return []Rect{
		{0, 0, 1, 1, "a-whole"},
		{0, 0, 0.5, 1, "b-half-left"},
		{0.5, 0, 1, 1, "b-half-right"},
		{0, 0, 1, 0.5, "b-half-top"},
		{0, 0.5, 1, 1, "b-half-bottom"},
		{0, 0, 0.5, 0.5, "c-quad-tl"},
		{0.5, 0, 1, 0.5, "c-quad-tr"},
		{0, 0.5, 0.5, 1, "c-quad-bl"},
		{0.5, 0.5, 1, 1, "c-quad-br"},
	}
}

// defaultSet: the 20-region family of Figure 3-5 — the 9 base regions plus
// the centre half-size window, four 2/3-size corner windows, a 2/3-size
// centre window, three vertical thirds, and the central horizontal and
// vertical bands.
func defaultSet() []Rect {
	rs := baseNine()
	rs = append(rs,
		Rect{0.25, 0.25, 0.75, 0.75, "d-center-half"},
		Rect{0, 0, 2.0 / 3, 2.0 / 3, "e-two3-tl"},
		Rect{1.0 / 3, 0, 1, 2.0 / 3, "e-two3-tr"},
		Rect{0, 1.0 / 3, 2.0 / 3, 1, "e-two3-bl"},
		Rect{1.0 / 3, 1.0 / 3, 1, 1, "e-two3-br"},
		Rect{1.0 / 6, 1.0 / 6, 5.0 / 6, 5.0 / 6, "e-two3-center"},
		Rect{0, 0, 1.0 / 3, 1, "f-vthird-left"},
		Rect{1.0 / 3, 0, 2.0 / 3, 1, "f-vthird-mid"},
		Rect{2.0 / 3, 0, 1, 1, "f-vthird-right"},
		Rect{0, 0.25, 1, 0.75, "g-hband"},
		Rect{0.25, 0, 0.75, 1, "g-vband"},
	)
	return rs
}

// largeSet: the 42-region family — the default 20 plus a 4×4 grid of
// half-size windows (stride 1/6), three horizontal thirds, and the three
// horizontal thirds' central halves.
func largeSet() []Rect {
	rs := defaultSet()
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			x0 := float64(j) / 6
			y0 := float64(i) / 6
			rs = append(rs, Rect{x0, y0, x0 + 0.5, y0 + 0.5, fmt.Sprintf("h-grid-%d%d", i, j)})
		}
	}
	rs = append(rs,
		Rect{0, 0, 1, 1.0 / 3, "i-hthird-top"},
		Rect{0, 1.0 / 3, 1, 2.0 / 3, "i-hthird-mid"},
		Rect{0, 2.0 / 3, 1, 1, "i-hthird-bottom"},
		Rect{0.25, 0, 0.75, 1.0 / 3, "j-hthirdband-top"},
		Rect{0.25, 1.0 / 3, 0.75, 2.0 / 3, "j-hthirdband-mid"},
		Rect{0.25, 2.0 / 3, 0.75, 1, "j-hthirdband-bottom"},
	)
	return rs
}

// DefaultVarianceThreshold is the gray-level variance below which a sampled
// region is discarded (§3.2): low-variance regions — blank sky, uniform
// backgrounds — are not likely to be interesting and only add noise to the
// bag. The value is in squared gray levels of the sampled h×h matrix.
const DefaultVarianceThreshold = 25.0
