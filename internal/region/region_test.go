package region

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetSizes(t *testing.T) {
	for _, tc := range []struct {
		size SetSize
		want int
	}{
		{Small, 9},
		{Default, 20},
		{Large, 42},
	} {
		rs, err := Set(tc.size)
		if err != nil {
			t.Fatalf("Set(%d): %v", tc.size, err)
		}
		if len(rs) != tc.want {
			t.Errorf("Set(%d) has %d regions, want %d", tc.size, len(rs), tc.want)
		}
	}
}

func TestSetUnknownSize(t *testing.T) {
	if _, err := Set(7); err == nil {
		t.Fatalf("expected error for unknown size")
	}
}

func TestMustSetPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	MustSet(3)
}

func TestAllRegionsValid(t *testing.T) {
	for _, size := range []SetSize{Small, Default, Large} {
		for _, r := range MustSet(size) {
			if !r.Valid() {
				t.Errorf("invalid region %v in set %d", r, size)
			}
			if r.Area() <= 0 || r.Area() > 1 {
				t.Errorf("region %v has area %v", r, r.Area())
			}
		}
	}
}

func TestNamesUniqueWithinSet(t *testing.T) {
	for _, size := range []SetSize{Small, Default, Large} {
		seen := map[string]bool{}
		for _, r := range MustSet(size) {
			if seen[r.Name] {
				t.Errorf("duplicate region name %q in set %d", r.Name, size)
			}
			seen[r.Name] = true
		}
	}
}

func TestSetsAreNested(t *testing.T) {
	names := func(size SetSize) map[string]bool {
		m := map[string]bool{}
		for _, r := range MustSet(size) {
			m[r.Name] = true
		}
		return m
	}
	small, def, large := names(Small), names(Default), names(Large)
	for n := range small {
		if !def[n] {
			t.Errorf("small region %q missing from default set", n)
		}
	}
	for n := range def {
		if !large[n] {
			t.Errorf("default region %q missing from large set", n)
		}
	}
}

func TestWholeImageRegionPresent(t *testing.T) {
	for _, size := range []SetSize{Small, Default, Large} {
		found := false
		for _, r := range MustSet(size) {
			if r.X0 == 0 && r.Y0 == 0 && r.X1 == 1 && r.Y1 == 1 {
				found = true
			}
		}
		if !found {
			t.Errorf("set %d lacks the whole-image region", size)
		}
	}
}

func TestSetDeterministicOrder(t *testing.T) {
	a := MustSet(Default)
	b := MustSet(Default)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Set is not deterministic at index %d", i)
		}
	}
}

func TestPixelsBasic(t *testing.T) {
	r := Rect{0, 0, 0.5, 0.5, "q"}
	x0, y0, x1, y1 := r.Pixels(100, 60)
	if x0 != 0 || y0 != 0 || x1 != 50 || y1 != 30 {
		t.Fatalf("Pixels = %d,%d,%d,%d", x0, y0, x1, y1)
	}
}

func TestPixelsNeverEmpty(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		w, h := 1+rr.Intn(64), 1+rr.Intn(64)
		x0 := rr.Float64() * 0.9
		y0 := rr.Float64() * 0.9
		r := Rect{x0, y0, x0 + 0.05 + rr.Float64()*(1-x0-0.05), y0 + 0.05 + rr.Float64()*(1-y0-0.05), "t"}
		if r.X1 > 1 || r.Y1 > 1 || !r.Valid() {
			return true
		}
		px0, py0, px1, py1 := r.Pixels(w, h)
		return px0 >= 0 && py0 >= 0 && px1 <= w && py1 <= h && px1 > px0 && py1 > py0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPixelsTinyImage(t *testing.T) {
	r := Rect{0.9, 0.9, 1, 1, "corner"}
	x0, y0, x1, y1 := r.Pixels(1, 1)
	if x0 != 0 || y0 != 0 || x1 != 1 || y1 != 1 {
		t.Fatalf("tiny image pixels = %d,%d,%d,%d", x0, y0, x1, y1)
	}
}

func TestMirrorGeometry(t *testing.T) {
	r := Rect{0.1, 0.2, 0.4, 0.9, "x"}
	m := r.Mirror()
	if math.Abs(m.X0-0.6) > 1e-12 || math.Abs(m.X1-0.9) > 1e-12 {
		t.Fatalf("mirror x extent wrong: %v", m)
	}
	if m.Y0 != r.Y0 || m.Y1 != r.Y1 {
		t.Fatalf("mirror must not change y extent: %v", m)
	}
}

// Property: mirroring twice restores the geometry.
func TestQuickMirrorInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		x0, y0 := rr.Float64()*0.5, rr.Float64()*0.5
		r := Rect{x0, y0, x0 + 0.1 + rr.Float64()*0.4, y0 + 0.1 + rr.Float64()*0.4, "t"}
		m := r.Mirror().Mirror()
		return math.Abs(m.X0-r.X0) < 1e-12 && math.Abs(m.X1-r.X1) < 1e-12 &&
			m.Y0 == r.Y0 && m.Y1 == r.Y1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: mirror preserves area.
func TestQuickMirrorPreservesArea(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		x0, y0 := rr.Float64()*0.5, rr.Float64()*0.5
		r := Rect{x0, y0, x0 + 0.1 + rr.Float64()*0.4, y0 + 0.1 + rr.Float64()*0.4, "t"}
		return math.Abs(r.Mirror().Area()-r.Area()) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStringIncludesName(t *testing.T) {
	s := Rect{0, 0, 1, 1, "whole"}.String()
	if s == "" || s[0:5] != "whole" {
		t.Fatalf("String() = %q", s)
	}
}
