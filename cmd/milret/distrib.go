package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"milret"
	"milret/internal/remote"
	"milret/internal/server"
)

// cmdShardServe serves one partition of a distributed topology: the
// binary shard RPC (consumed by a coordinator) mounted at /rpc next to
// the ordinary JSON surface, so the host stays curl-inspectable and can
// still be operated directly.
func cmdShardServe(args []string) error {
	fs := flag.NewFlagSet("shard-serve", flag.ExitOnError)
	dbPath := fs.String("db", "db.milret", "this partition's database path (one shard of a resharded store)")
	addr := fs.String("addr", "127.0.0.1:8081", "listen address")
	fastLoad := fs.Bool("fast-load", false, "skip the synchronous data checksum: zero-copy O(images) open, verified in the background (see /v1/healthz)")
	readOnly := fs.Bool("readonly", false, "refuse mutations on both the RPC and the JSON surface")
	cacheMB := fs.Int("concept-cache-mb", 0, "memory bound of this shard's own trained-concept LRU cache in MB (coordinator-routed queries train on the coordinator; this cache only serves direct /v1/query traffic)")
	recall := fs.Float64("recall", 0, "default candidate-pruning tier for direct JSON queries; coordinator RPCs carry their own recall")
	applyKernel := kernelFlag(fs)
	fs.Parse(args)

	if err := applyKernel(); err != nil {
		return err
	}
	db, err := milret.LoadDatabase(*dbPath, milret.Options{
		VerifyOnLoad: !*fastLoad, ConceptCacheMB: *cacheMB, Recall: *recall,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		db.Close()
		return err
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	rpc := remote.NewShardServer(db)
	rpc.ReadOnly = *readOnly
	jsonSurface := server.New(db)
	jsonSurface.ReadOnly = *readOnly
	mux := http.NewServeMux()
	mux.Handle(remote.RPCPath, rpc)
	mux.Handle("/", jsonSurface)

	fmt.Printf("shard-serving %d images on http://%s (RPC at %s, JSON at /v1)\n",
		db.Len(), ln.Addr(), remote.RPCPath)
	return serveHandlerUntilSignal(mux, ln, sig, db.Flush, db.Close)
}

// serveTuning carries the serve flags that apply in coordinator mode.
type serveTuning struct {
	cacheMB  int
	recall   float64
	fastLoad bool
}

// serveTopology runs `milret serve -topology`: one coordinator fronting
// the topology's partitions behind the ordinary JSON surface.
func serveTopology(topoPath, addr string, readOnly bool, tune serveTuning) error {
	topo, err := remote.LoadTopology(topoPath)
	if err != nil {
		return err
	}
	coord, err := remote.NewCoordinator(topo, remote.CoordinatorOptions{
		ConceptCacheMB: tune.cacheMB,
		Recall:         tune.recall,
		Local:          milret.Options{VerifyOnLoad: !tune.fastLoad},
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		coord.Close()
		return err
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	h := server.NewBackend(coord)
	h.ReadOnly = readOnly
	for _, p := range topo.Partitions {
		where := p.Path
		if p.Remote() {
			where = p.Addr
		}
		fmt.Printf("partition %-12s %s\n", p.Name, where)
	}
	fmt.Printf("coordinating %d partitions (%d images, partial=%s) on http://%s\n",
		len(topo.Partitions), coord.Len(), topo.PartialPolicy(), ln.Addr())
	return serveHandlerUntilSignal(h, ln, sig, coord.Flush, coord.Close)
}

// cmdReshard rewrites a store into a different shard count, routing
// every live image by the placement hash so the result lines up with a
// topology of the same size. The source is opened read-only (verified)
// and left untouched; tombstoned rows are not carried over.
func cmdReshard(args []string) error {
	fs := flag.NewFlagSet("reshard", flag.ExitOnError)
	src := fs.String("src", "", "source store path (flat file or manifest)")
	dst := fs.String("dst", "", "destination store path (must differ from -src)")
	shards := fs.Int("shards", 4, "destination shard count; 1 writes a single flat file")
	fs.Parse(args)

	if *src == "" || *dst == "" {
		return fmt.Errorf("reshard: -src and -dst are required")
	}
	if err := milret.Reshard(*src, *dst, *shards); err != nil {
		return err
	}
	fmt.Printf("resharded %s into %s (%d shards)\n", *src, *dst, *shards)
	return nil
}
