// The loadtest subcommand: a measured load harness for the serving stack.
//
//	milret loadtest -duration 10s -concurrency 8
//	milret loadtest -db scenes.milret -duration 30s -rate 200 -out report.json
//	milret loadtest -addr 127.0.0.1:8080 -duration 10s
//
// It drives mixed traffic — single queries, batched retrievals and
// label-mutation PUTs — against a live serve process (an external one via
// -addr, or an in-process server over a synthetic corpus by default),
// reporting p50/p99/p999 latency per traffic class. Queries rotate
// through a fixed set of distinct example combinations, so steady-state
// traffic exercises the concept cache the way repeat-heavy production
// traffic does (first arrival trains, repeats hit, concurrent duplicates
// coalesce).
//
// After the steady phase, the in-process harness measures the restart
// storm the concept-cache sidecar exists to fix: it restarts the server
// twice — once warm (flush, reopen with the sidecar) and once cold
// (reopen without it) — and replays the same repeat queries against each,
// reporting the two latency profiles side by side. A warm restart answers
// every repeat from the sidecar-loaded cache without invoking the
// trainer; a cold restart retrains every one of them.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"milret"
	"milret/internal/server"
	"milret/internal/synth"
)

// ltSpec is one distinct query the generator rotates through.
type ltSpec struct {
	Positives []string
	Negatives []string
}

// ltSample is one completed operation: its traffic class (query-hit,
// query-miss, query-coalesced, batch, mutation, error) and latency.
type ltSample struct {
	class string
	d     time.Duration
}

// ltLatency summarizes one traffic class.
type ltLatency struct {
	Count  int     `json:"count"`
	P50MS  float64 `json:"p50_ms"`
	P99MS  float64 `json:"p99_ms"`
	P999MS float64 `json:"p999_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// ltPhase is one phase's per-class latency table.
type ltPhase struct {
	Ops     int                   `json:"ops"`
	Errors  int                   `json:"errors"`
	Seconds float64               `json:"seconds"`
	Classes map[string]*ltLatency `json:"classes"`
}

// ltPrune is the candidate-filter block of the report: the server's
// cumulative screen counters after the steady phase, plus the achieved
// recall measured by replaying each query fingerprint pruned and exact and
// comparing the top-k sets (only measurable against a filtered scan).
type ltPrune struct {
	Screened       int64   `json:"screened"`
	Admitted       int64   `json:"admitted"`
	Rejected       int64   `json:"rejected"`
	AchievedRecall float64 `json:"achieved_recall,omitempty"`
}

// ltReport is the loadtest's full output, also written as JSON via -out.
type ltReport struct {
	Target      string   `json:"target"`
	Images      int      `json:"images"`
	Concurrency int      `json:"concurrency"`
	RatePerSec  float64  `json:"rate_per_sec,omitempty"`
	Recall      float64  `json:"recall,omitempty"`
	Prune       *ltPrune `json:"prune,omitempty"`
	Steady      *ltPhase `json:"steady"`
	WarmRestart *ltPhase `json:"warm_restart,omitempty"`
	ColdRestart *ltPhase `json:"cold_restart,omitempty"`
	// WarmServedWithoutTraining is true when every repeat query after the
	// warm restart was answered from the sidecar-loaded cache (no cache
	// misses) — the property the sidecar exists to provide.
	WarmServedWithoutTraining bool `json:"warm_served_without_training,omitempty"`
}

func cmdLoadtest(args []string) error {
	fs := flag.NewFlagSet("loadtest", flag.ExitOnError)
	dbPath := fs.String("db", "", "existing database to serve in-process (default: build a synthetic corpus)")
	addr := fs.String("addr", "", "drive an already-running server at this address instead of starting one in-process (restart phases are skipped)")
	synthN := fs.Int("synth", 3, "images per category of the synthetic corpus built when -db is empty")
	imagesN := fs.Int("images", 0, "total synthetic corpus size when -db is empty (overrides -synth): images are generated and ingested one at a time, so large corpora build without holding the corpus in memory")
	recall := fs.Float64("recall", 0, "candidate-pruning tier for query scans (see serve -recall): 0 leaves the server's default, 1.0 the bit-identical filter, (0,1) calibrated; sent per request, so it also applies to an external -addr server")
	duration := fs.Duration("duration", 10*time.Second, "steady-phase length")
	concurrency := fs.Int("concurrency", 4, "closed-loop worker count")
	rate := fs.Float64("rate", 0, "open-loop target ops/sec across all workers (0 = closed loop, as fast as the server allows)")
	queries := fs.Int("queries", 6, "distinct query fingerprints to rotate through")
	k := fs.Int("k", 5, "results per query")
	mutEvery := fs.Int("mutate-every", 11, "every Nth op is a label-mutation PUT (0 disables mutations)")
	batchEvery := fs.Int("batch-every", 7, "every Nth op is a 3-query batched retrieval (0 disables batches)")
	cacheMB := fs.Int("concept-cache-mb", 64, "concept-cache size for the in-process server")
	repeats := fs.Int("restart-repeats", 20, "repeat queries replayed against each restarted server")
	out := fs.String("out", "", "also write the report as JSON to this path")
	applyKernel := kernelFlag(fs)
	fs.Parse(args)

	if err := applyKernel(); err != nil {
		return err
	}
	rep := &ltReport{Concurrency: *concurrency, RatePerSec: *rate, Recall: *recall}
	var base string
	var h *ltHarness
	if *addr != "" {
		base = "http://" + *addr
		rep.Target = base
	} else {
		var err error
		h, err = startHarness(*dbPath, *synthN, *imagesN, *cacheMB, *recall)
		if err != nil {
			return err
		}
		defer h.stop()
		base = h.base()
		rep.Target = base + " (in-process)"
	}

	specs, images, err := buildSpecs(base, *queries)
	if err != nil {
		return err
	}
	rep.Images = images
	fmt.Printf("loadtest: %s — %d images, %d distinct queries, %d workers, %v steady phase\n",
		rep.Target, images, len(specs), *concurrency, *duration)

	gen := &ltGen{
		base: base, specs: specs, k: *k,
		mutEvery: *mutEvery, batchEvery: *batchEvery,
	}
	if *recall != 0 {
		gen.recall = recall
	}
	if gen.mutEvery > 0 {
		if gen.mutIDs, err = fetchIDs(base); err != nil {
			return err
		}
	}
	rep.Steady = runPhase(gen, *concurrency, *rate, *duration)
	printPhase("steady", rep.Steady)

	if pr := fetchPrune(base); pr != nil {
		rep.Prune = &ltPrune{Screened: pr.Screened, Admitted: pr.Admitted, Rejected: pr.Rejected}
		line := fmt.Sprintf("prune: screened %d, admitted %d, rejected %d (%.1f%%)",
			pr.Screened, pr.Admitted, pr.Rejected, 100*float64(pr.Rejected)/float64(pr.Screened))
		if *recall > 0 {
			if ar, ok := measureAchievedRecall(gen, specs, *recall); ok {
				rep.Prune.AchievedRecall = ar
				line += fmt.Sprintf(", achieved recall %.4f", ar)
			}
		}
		fmt.Println(line)
	}

	if h != nil {
		// Warm restart: capture the sidecar, reopen with it, replay.
		if err := h.restart(true); err != nil {
			return fmt.Errorf("warm restart: %w", err)
		}
		gen.base = h.base()
		rep.WarmRestart = replayRepeats(gen, specs, *repeats)
		printPhase("warm-restart", rep.WarmRestart)
		misses := 0
		for cl, lat := range rep.WarmRestart.Classes {
			if cl != "query-hit" {
				misses += lat.Count
			}
		}
		rep.WarmServedWithoutTraining = misses == 0 && rep.WarmRestart.Errors == 0

		// Cold restart: reopen without the sidecar, replay the same
		// repeats — every one retrains.
		if err := h.restart(false); err != nil {
			return fmt.Errorf("cold restart: %w", err)
		}
		gen.base = h.base()
		rep.ColdRestart = replayRepeats(gen, specs, *repeats)
		printPhase("cold-restart", rep.ColdRestart)

		warmP99 := phaseP99(rep.WarmRestart)
		coldP99 := phaseP99(rep.ColdRestart)
		if warmP99 > 0 {
			fmt.Printf("restart comparison: warm p99 %.2fms vs cold p99 %.2fms (%.0f× colder), warm served without training: %v\n",
				warmP99, coldP99, coldP99/warmP99, rep.WarmServedWithoutTraining)
		}
	}

	if *out != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", *out)
	}
	return nil
}

// ltHarness is the in-process server under test: a real TCP listener and
// http.Server over a database the harness owns, restartable warm (with
// the concept-cache sidecar) or cold (without).
type ltHarness struct {
	dbPath  string
	ccFile  string
	cacheMB int
	recall  float64
	db      *milret.Database
	srv     *http.Server
	ln      net.Listener
	done    chan error
}

// errCorpusReady stops the streaming corpus generator once the -images
// target is reached.
var errCorpusReady = errors.New("corpus target reached")

// startHarness builds (or opens) the store and starts serving it on an
// ephemeral local port. A synthetic corpus is generated item by item
// (synth.ObjectsEach) and ingested as it streams, so the harness never
// holds more than one decoded image — -images can exceed RAM-sized
// corpora without the builder itself becoming the bottleneck.
func startHarness(dbPath string, synthN, images, cacheMB int, recall float64) (*ltHarness, error) {
	h := &ltHarness{cacheMB: cacheMB, recall: recall}
	if dbPath == "" {
		dir, err := os.MkdirTemp("", "milret-loadtest-*")
		if err != nil {
			return nil, err
		}
		dbPath = filepath.Join(dir, "loadtest.milret")
		db, err := milret.NewDatabase(milret.Options{Resolution: 6, Regions: 9})
		if err != nil {
			return nil, err
		}
		perCat, target := synthN, 0
		if images > 0 {
			nCats := len(synth.ObjectCategories)
			perCat = (images + nCats - 1) / nCats
			target = images
		}
		added := 0
		err = synth.ObjectsEach(41, perCat, func(it synth.Item) error {
			if target > 0 && added >= target {
				return errCorpusReady
			}
			if err := db.AddImage(it.ID, it.Label, it.Image); err != nil {
				return err
			}
			added++
			return nil
		})
		if err != nil && err != errCorpusReady {
			return nil, err
		}
		if err := db.Save(dbPath); err != nil {
			return nil, err
		}
		db.Close()
	}
	h.dbPath = dbPath
	h.ccFile = dbPath + ".ccache"
	if err := h.open(true); err != nil {
		return nil, err
	}
	return h, h.serve()
}

// open loads the database, warm (sidecar) or cold (no sidecar path).
func (h *ltHarness) open(warm bool) error {
	ccFile := h.ccFile
	if !warm {
		ccFile = ""
	}
	db, err := milret.LoadDatabase(h.dbPath, milret.Options{
		ConceptCacheMB: h.cacheMB, ConceptCacheFile: ccFile, Recall: h.recall,
	})
	if err != nil {
		return err
	}
	h.db = db
	return nil
}

func (h *ltHarness) serve() error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	h.ln = ln
	h.srv = &http.Server{Handler: server.New(h.db)}
	h.done = make(chan error, 1)
	go func() { h.done <- h.srv.Serve(ln) }()
	return nil
}

func (h *ltHarness) base() string { return "http://" + h.ln.Addr().String() }

// restart tears the server down the way a deploy does — close listener,
// flush (capturing the sidecar), release the store — and brings it back
// up, loading the sidecar (warm) or ignoring it (cold).
func (h *ltHarness) restart(warm bool) error {
	h.srv.Close()
	<-h.done
	if err := h.db.Flush(); err != nil {
		return err
	}
	if err := h.db.Close(); err != nil {
		return err
	}
	if err := h.open(warm); err != nil {
		return err
	}
	return h.serve()
}

func (h *ltHarness) stop() {
	if h.srv != nil {
		h.srv.Close()
		<-h.done
	}
	if h.db != nil {
		h.db.Close()
	}
}

// fetchLabeled lists the served image IDs grouped by label.
func fetchLabeled(base string) (map[string][]string, error) {
	resp, err := http.Get(base + "/v1/images")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var infos []server.ImageInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		return nil, err
	}
	byLabel := map[string][]string{}
	for _, in := range infos {
		byLabel[in.Label] = append(byLabel[in.Label], in.ID)
	}
	return byLabel, nil
}

// fetchPrune reads the server's cumulative candidate-filter counters from
// /v1/stats; nil when the server has not run a pruned scan (the stats block
// is omitted) or the endpoint is unreachable.
func fetchPrune(base string) *server.PruneStatsResponse {
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var st server.StatsResponse
	if json.NewDecoder(resp.Body).Decode(&st) != nil {
		return nil
	}
	return st.Prune
}

// measureAchievedRecall replays each query fingerprint twice — once through
// the filter at the requested recall, once with pruning forced off — and
// returns the fraction of exact top-k results the pruned scan kept. ok is
// false when no comparison could be made.
func measureAchievedRecall(g *ltGen, specs []ltSpec, recall float64) (float64, bool) {
	exact := -1.0
	total, kept := 0, 0
	for _, sp := range specs {
		req := server.QueryRequest{
			Positives: sp.Positives, Negatives: sp.Negatives, K: g.k, Mode: "identical",
			Recall: &recall,
		}
		var pruned, full server.QueryResponse
		if g.post("/v1/query", req, &pruned) != nil {
			return 0, false
		}
		req.Recall = &exact
		if g.post("/v1/query", req, &full) != nil {
			return 0, false
		}
		got := make(map[string]bool, len(pruned.Results))
		for _, r := range pruned.Results {
			got[r.ID] = true
		}
		for _, r := range full.Results {
			total++
			if got[r.ID] {
				kept++
			}
		}
	}
	if total == 0 {
		return 0, false
	}
	return float64(kept) / float64(total), true
}

func fetchIDs(base string) ([]string, error) {
	byLabel, err := fetchLabeled(base)
	if err != nil {
		return nil, err
	}
	var ids []string
	for _, group := range byLabel {
		ids = append(ids, group...)
	}
	sort.Strings(ids)
	return ids, nil
}

// buildSpecs derives n distinct example-based queries from the served
// corpus: rotating positive pairs within a label, negatives from the next
// label over. Deterministic, so a rerun (or a restarted server) sees the
// exact same fingerprints.
func buildSpecs(base string, n int) ([]ltSpec, int, error) {
	byLabel, err := fetchLabeled(base)
	if err != nil {
		return nil, 0, err
	}
	labels := make([]string, 0, len(byLabel))
	images := 0
	for lb, ids := range byLabel {
		sort.Strings(ids)
		images += len(ids)
		if len(ids) >= 2 {
			labels = append(labels, lb)
		}
	}
	sort.Strings(labels)
	if len(labels) == 0 {
		return nil, images, fmt.Errorf("no label with ≥2 images to build queries from")
	}
	var specs []ltSpec
	for i := 0; len(specs) < n; i++ {
		lb := labels[i%len(labels)]
		ids := byLabel[lb]
		rot := i / len(labels)
		if rot+1 >= len(ids) && len(specs) > 0 {
			break // corpus too small for more distinct combinations
		}
		pos := []string{ids[rot%len(ids)], ids[(rot+1)%len(ids)]}
		var neg []string
		other := byLabel[labels[(i+1)%len(labels)]]
		if len(other) > 0 && labels[(i+1)%len(labels)] != lb {
			neg = []string{other[rot%len(other)]}
		}
		specs = append(specs, ltSpec{Positives: pos, Negatives: neg})
	}
	return specs, images, nil
}

// ltGen issues one operation per call, classed by the op sequence number:
// every batchEvery-th a batch, every mutEvery-th a mutation, the rest
// single queries rotating through the spec set.
type ltGen struct {
	base       string
	specs      []ltSpec
	mutIDs     []string
	k          int
	mutEvery   int
	batchEvery int
	recall     *float64 // per-request pruning override; nil leaves the server default
	client     http.Client
}

func (g *ltGen) op(seq int) ltSample {
	start := time.Now()
	class, err := g.issue(seq)
	d := time.Since(start)
	if err != nil {
		class = "error"
	}
	return ltSample{class: class, d: d}
}

func (g *ltGen) issue(seq int) (string, error) {
	switch {
	case g.batchEvery > 0 && seq%g.batchEvery == g.batchEvery-1:
		return g.batch(seq)
	case g.mutEvery > 0 && seq%g.mutEvery == g.mutEvery-1:
		return g.mutate(seq)
	default:
		return g.query(seq)
	}
}

// query posts one /v1/query; the class comes from the server's own cache
// disposition, so the report separates hit, miss and coalesced latency.
func (g *ltGen) query(seq int) (string, error) {
	sp := g.specs[seq%len(g.specs)]
	var resp server.QueryResponse
	err := g.post("/v1/query", server.QueryRequest{
		Positives: sp.Positives, Negatives: sp.Negatives, K: g.k, Mode: "identical",
		Recall: g.recall,
	}, &resp)
	if err != nil {
		return "", err
	}
	if resp.Cache == "" {
		return "query", nil
	}
	return "query-" + resp.Cache, nil
}

// batch posts a 3-entry /v1/retrieve/batch rotating through the specs.
func (g *ltGen) batch(seq int) (string, error) {
	qs := make([]server.BatchQuery, 0, 3)
	for j := 0; j < 3; j++ {
		sp := g.specs[(seq+j)%len(g.specs)]
		qs = append(qs, server.BatchQuery{Positives: sp.Positives, Negatives: sp.Negatives, Mode: "identical"})
	}
	var resp server.BatchRetrieveResponse
	if err := g.post("/v1/retrieve/batch", server.BatchRetrieveRequest{Queries: qs, K: g.k, Recall: g.recall}, &resp); err != nil {
		return "", err
	}
	return "batch", nil
}

// mutate PUTs a label-only update — the metadata mutation path: journaled
// and flushed like any write, but leaving bag content (and therefore
// every cache fingerprint) untouched.
func (g *ltGen) mutate(seq int) (string, error) {
	id := g.mutIDs[seq%len(g.mutIDs)]
	body, err := json.Marshal(server.UpdateImageRequest{Label: fmt.Sprintf("lt-%d", seq%7)})
	if err != nil {
		return "", err
	}
	req, err := http.NewRequest(http.MethodPut, g.base+"/v1/images/"+id, bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("PUT %s: status %d", id, resp.StatusCode)
	}
	return "mutation", nil
}

func (g *ltGen) post(path string, body, into any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := g.client.Post(g.base+path, "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("POST %s: status %d: %s", path, resp.StatusCode, msg)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

// runPhase drives the generator for the given duration: closed-loop
// (workers back to back) or open-loop (a shared pacer at rate ops/sec
// that workers drain, so a slow server accumulates queue delay in the
// measured latency rather than throttling offered load).
func runPhase(gen *ltGen, concurrency int, rate float64, duration time.Duration) *ltPhase {
	deadline := time.Now().Add(duration)
	var seq atomic.Int64
	var mu sync.Mutex
	var samples []ltSample

	var pace chan struct{}
	if rate > 0 {
		pace = make(chan struct{}, concurrency)
		interval := time.Duration(float64(time.Second) / rate)
		go func() {
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for time.Now().Before(deadline) {
				<-tick.C
				select {
				case pace <- struct{}{}:
				default: // all workers busy: the tick's op is dropped, not queued forever
				}
			}
			close(pace)
		}()
	}

	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				if pace != nil {
					if _, ok := <-pace; !ok {
						return
					}
				}
				s := gen.op(int(seq.Add(1) - 1))
				mu.Lock()
				samples = append(samples, s)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return summarize(samples, duration)
}

// replayRepeats issues each spec sequentially, repeats times in rotation —
// the repeat-query traffic a restarted replica sees first.
func replayRepeats(gen *ltGen, specs []ltSpec, repeats int) *ltPhase {
	start := time.Now()
	var samples []ltSample
	for i := 0; i < repeats; i++ {
		startOp := time.Now()
		class, err := gen.query(i % len(specs))
		if err != nil {
			class = "error"
		}
		samples = append(samples, ltSample{class: class, d: time.Since(startOp)})
	}
	return summarize(samples, time.Since(start))
}

func summarize(samples []ltSample, elapsed time.Duration) *ltPhase {
	ph := &ltPhase{Classes: map[string]*ltLatency{}, Seconds: elapsed.Seconds()}
	byClass := map[string][]time.Duration{}
	for _, s := range samples {
		ph.Ops++
		if s.class == "error" {
			ph.Errors++
		}
		byClass[s.class] = append(byClass[s.class], s.d)
	}
	for cl, ds := range byClass {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		ph.Classes[cl] = &ltLatency{
			Count:  len(ds),
			P50MS:  ms(pct(ds, 0.50)),
			P99MS:  ms(pct(ds, 0.99)),
			P999MS: ms(pct(ds, 0.999)),
			MaxMS:  ms(ds[len(ds)-1]),
		}
	}
	return ph
}

func pct(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// phaseP99 returns the worst per-class p99 of the query classes — the
// restart comparison's headline number.
func phaseP99(ph *ltPhase) float64 {
	worst := 0.0
	for cl, lat := range ph.Classes {
		if cl == "error" {
			continue
		}
		if lat.P99MS > worst {
			worst = lat.P99MS
		}
	}
	return worst
}

func printPhase(name string, ph *ltPhase) {
	fmt.Printf("%-13s %5d ops in %6.2fs (%d errors)\n", name+":", ph.Ops, ph.Seconds, ph.Errors)
	classes := make([]string, 0, len(ph.Classes))
	for cl := range ph.Classes {
		classes = append(classes, cl)
	}
	sort.Strings(classes)
	for _, cl := range classes {
		lat := ph.Classes[cl]
		fmt.Printf("  %-16s %5d  p50 %8.2fms  p99 %8.2fms  p99.9 %8.2fms  max %8.2fms\n",
			cl, lat.Count, lat.P50MS, lat.P99MS, lat.P999MS, lat.MaxMS)
	}
}
