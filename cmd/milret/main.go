// Command milret is the end-to-end CLI for the retrieval system:
//
//	milret gen   -kind scenes -dir corpus/         # generate a synthetic corpus as PNGs
//	milret build -dir corpus/ -db scenes.milret    # featurize into a binary store
//	milret query -db scenes.milret -pos id1,id2 -neg id3 -k 12
//	milret eval  -db scenes.milret -target waterfall
//
// gen writes <dir>/<id>.png plus a labels.csv mapping IDs to categories;
// build runs the §3.5 preprocessing pipeline over every PNG; query trains
// Diverse Density on the named examples and prints the top matches; eval
// runs the paper's automated feedback protocol and prints ranking metrics.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"image/png"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"milret"
	"milret/internal/mat"
	"milret/internal/server"
	"milret/internal/store"
	"milret/internal/synth"
)

// kernelFlag registers the -kernel flag on a command's flag set. The
// returned apply func routes the choice through mat.SetKernel (the same
// switch the MILRET_KERNEL environment variable hits at init) and reports
// the implementation actually selected, so a startup log always records
// which kernel produced the run's numbers.
func kernelFlag(fs *flag.FlagSet) (apply func() error) {
	mode := fs.String("kernel", "auto", `distance kernel: "auto" (AVX2 when the CPU supports it), "scalar", or "avx2" (error if unsupported)`)
	return func() error {
		if err := mat.SetKernel(*mode); err != nil {
			return err
		}
		fmt.Printf("distance kernel: %s\n", mat.Kernel())
		return nil
	}
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "build":
		err = cmdBuild(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "eval":
		err = cmdEval(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "shard-serve":
		err = cmdShardServe(os.Args[2:])
	case "reshard":
		err = cmdReshard(os.Args[2:])
	case "loadtest":
		err = cmdLoadtest(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "milret: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: milret <gen|build|query|eval|serve|shard-serve|reshard|loadtest> [flags]")
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	dbPath := fs.String("db", "db.milret", "database path")
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	fastLoad := fs.Bool("fast-load", false, "skip the synchronous data checksum: zero-copy O(images) open, verified in the background (see /v1/healthz)")
	readOnly := fs.Bool("readonly", false, "refuse DELETE/PUT mutations")
	cacheMB := fs.Int("concept-cache-mb", 64, "memory bound of the trained-concept LRU cache in MB; repeat /v1/query requests skip training and concurrent identical ones coalesce (0 disables)")
	cacheFile := fs.String("concept-cache-file", "", `concept-cache sidecar path: hot trained concepts are persisted there on flush/shutdown and loaded on start, so a restarted replica answers repeat queries without retraining; "" defaults to <db>.ccache when the cache is enabled, "off" disables persistence`)
	recall := fs.Float64("recall", 0, "default candidate-pruning tier for query scans: 0 disables the sketch filter, 1.0 enables the conservative bit-identical filter, values in (0,1) trade that fraction of recall for more pruning; per-request \"recall\" overrides")
	topology := fs.String("topology", "", "coordinator mode: serve a topology file's partitions (local store paths and/or remote shard-serve addresses) as one database; -db is ignored")
	applyKernel := kernelFlag(fs)
	fs.Parse(args)

	if err := applyKernel(); err != nil {
		return err
	}
	if *topology != "" {
		return serveTopology(*topology, *addr, *readOnly, serveTuning{
			cacheMB: *cacheMB, recall: *recall, fastLoad: *fastLoad,
		})
	}
	ccFile := resolveCacheFile(*cacheFile, *dbPath, *cacheMB)
	db, err := milret.LoadDatabase(*dbPath, milret.Options{
		VerifyOnLoad: !*fastLoad, ConceptCacheMB: *cacheMB, ConceptCacheFile: ccFile,
		Recall: *recall,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		db.Close()
		return err
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	cacheNote := "off"
	if *cacheMB > 0 {
		cacheNote = fmt.Sprintf("%dMB", *cacheMB)
		if ccFile != "" {
			warm := int64(0)
			if st := db.Stats(); st.Cache != nil {
				warm = st.Cache.WarmLoaded
			}
			cacheNote += fmt.Sprintf(", persisted to %s, %d warm", ccFile, warm)
		}
	}
	pruneNote := ""
	if *recall > 0 {
		pruneNote = fmt.Sprintf(", prune recall %g", *recall)
	}
	fmt.Printf("serving %d images (%d shards, concept cache %s%s) on http://%s (POST /v1/query)\n",
		db.Len(), db.ShardCount(), cacheNote, pruneNote, ln.Addr())
	return serveUntilSignal(db, ln, *readOnly, sig)
}

// resolveCacheFile maps the -concept-cache-file flag to an Options path:
// the empty default derives "<db>.ccache", "off" (or a disabled cache)
// means no persistence.
func resolveCacheFile(flagVal, dbPath string, cacheMB int) string {
	if cacheMB <= 0 || flagVal == "off" {
		return ""
	}
	if flagVal == "" {
		return store.CacheSidecarPath(dbPath)
	}
	return flagVal
}

// shutdownDrainTimeout bounds the graceful drain of in-flight requests on
// shutdown; a variable so the shutdown-under-load test can shorten it.
var shutdownDrainTimeout = 10 * time.Second

// serveUntilSignal runs the HTTP server on ln until a signal arrives (or
// the listener fails), then shuts down gracefully: in-flight requests are
// drained (bounded by a timeout), pending mutations are flushed to the
// write-ahead log, the concept cache is captured to its sidecar, and the
// database releases its memory mapping.
func serveUntilSignal(db *milret.Database, ln net.Listener, readOnly bool, sig <-chan os.Signal) error {
	h := server.New(db)
	h.ReadOnly = readOnly
	return serveHandlerUntilSignal(h, ln, sig, db.Flush, db.Close)
}

// serveHandlerUntilSignal is serveUntilSignal generalized over the
// handler and the backing resource: shard-serve mounts the RPC next to
// the JSON surface, and serve -topology fronts a coordinator instead of
// a database. flush runs after the drain (durability barrier), closeFn
// last (release).
func serveHandlerUntilSignal(h http.Handler, ln net.Listener, sig <-chan os.Signal, flush, closeFn func() error) error {
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	var err error
	select {
	case err = <-errc:
		// The listener failed outright; nothing is serving anymore.
	case s := <-sig:
		fmt.Printf("received %v, shutting down\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), shutdownDrainTimeout)
		err = srv.Shutdown(ctx)
		cancel()
		if err != nil {
			// The drain timed out with handlers still running — typically
			// parked behind an in-flight training run (their own, or one
			// they coalesced onto). Shutdown does not cancel request
			// contexts; Close force-closes the remaining connections, which
			// does, releasing coalesced cache waiters (qcache.DoContext) so
			// the process always exits instead of deadlocking. Flight
			// leaders run their training to completion either way, and the
			// Flush below captures those concepts in the sidecar.
			fmt.Printf("drain timed out (%v), force-closing remaining connections\n", err)
			if cerr := srv.Close(); cerr == nil {
				err = nil // handled: degraded but completed shutdown
			}
		}
		<-errc // Serve has returned http.ErrServerClosed
	}
	if ferr := flush(); err == nil {
		err = ferr
	}
	if cerr := closeFn(); err == nil {
		err = cerr
	}
	return err
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	kind := fs.String("kind", "scenes", "corpus kind: scenes or objects")
	dir := fs.String("dir", "corpus", "output directory")
	seed := fs.Int64("seed", 1998, "generation seed")
	perCat := fs.Int("per-category", 0, "images per category (0 = paper size)")
	fs.Parse(args)

	var items []synth.Item
	switch *kind {
	case "scenes":
		n := *perCat
		if n == 0 {
			n = synth.ScenesPerCategory
		}
		items = synth.ScenesN(*seed, n)
	case "objects":
		n := *perCat
		if n == 0 {
			n = synth.ObjectsPerCategory
		}
		items = synth.ObjectsN(*seed, n)
	default:
		return fmt.Errorf("unknown corpus kind %q", *kind)
	}

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	labels, err := os.Create(filepath.Join(*dir, "labels.csv"))
	if err != nil {
		return err
	}
	defer labels.Close()
	w := bufio.NewWriter(labels)
	fmt.Fprintln(w, "id,label")
	for _, it := range items {
		f, err := os.Create(filepath.Join(*dir, it.ID+".png"))
		if err != nil {
			return err
		}
		if err := png.Encode(f, it.Image); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "%s,%s\n", it.ID, it.Label)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("wrote %d images to %s\n", len(items), *dir)
	return nil
}

func readLabels(dir string) (map[string]string, error) {
	labels := map[string]string{}
	f, err := os.Open(filepath.Join(dir, "labels.csv"))
	if err != nil {
		if os.IsNotExist(err) {
			return labels, nil // labels are optional
		}
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	first := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if first {
			first = false
			continue
		}
		if line == "" {
			continue
		}
		parts := strings.SplitN(line, ",", 2)
		if len(parts) == 2 {
			labels[parts[0]] = parts[1]
		}
	}
	return labels, sc.Err()
}

func cmdBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	dir := fs.String("dir", "corpus", "input directory of PNG images")
	dbPath := fs.String("db", "db.milret", "output database path")
	resolution := fs.Int("resolution", 10, "sampling resolution h")
	regions := fs.Int("regions", 20, "region family size: 9, 20 or 42")
	shards := fs.Int("shards", 1, "shard count: >1 writes a MILRETS1 manifest plus one snapshot/WAL pair per shard")
	fs.Parse(args)

	db, err := milret.NewDatabase(milret.Options{Resolution: *resolution, Regions: *regions, Shards: *shards})
	if err != nil {
		return err
	}
	labels, err := readLabels(*dir)
	if err != nil {
		return err
	}
	entries, err := filepath.Glob(filepath.Join(*dir, "*.png"))
	if err != nil {
		return err
	}
	sort.Strings(entries)
	if len(entries) == 0 {
		return fmt.Errorf("no PNG images in %s", *dir)
	}
	for _, path := range entries {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		img, err := png.Decode(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		id := strings.TrimSuffix(filepath.Base(path), ".png")
		if err := db.AddImage(id, labels[id], img); err != nil {
			return err
		}
	}
	if err := db.Save(*dbPath); err != nil {
		return err
	}
	if db.ShardCount() > 1 {
		fmt.Printf("featurized %d images into %s (%d shards)\n", db.Len(), *dbPath, db.ShardCount())
	} else {
		fmt.Printf("featurized %d images into %s\n", db.Len(), *dbPath)
	}
	return nil
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	dbPath := fs.String("db", "db.milret", "database path")
	pos := fs.String("pos", "", "comma-separated positive example IDs")
	neg := fs.String("neg", "", "comma-separated negative example IDs")
	k := fs.Int("k", 12, "number of results")
	mode := fs.String("mode", "constrained", "weight mode: original, identical, alpha-hack, constrained")
	beta := fs.Float64("beta", 0.5, "sum-constraint level for constrained mode")
	fastLoad := fs.Bool("fast-load", false, "skip the data checksum: zero-copy O(images) open")
	fs.Parse(args)

	db, err := milret.LoadDatabase(*dbPath, milret.Options{VerifyOnLoad: !*fastLoad})
	if err != nil {
		return err
	}
	posIDs := splitIDs(*pos)
	negIDs := splitIDs(*neg)
	if len(posIDs) == 0 {
		return fmt.Errorf("at least one -pos example is required")
	}
	wm, err := parseMode(*mode)
	if err != nil {
		return err
	}
	concept, err := db.Train(posIDs, negIDs, milret.TrainOptions{Mode: wm, Beta: *beta})
	if err != nil {
		return err
	}
	fmt.Printf("concept trained: -logDD = %.4f\n", concept.NegLogDD())
	exclude := append(append([]string{}, posIDs...), negIDs...)
	for i, r := range db.RetrieveExcluding(concept, *k, exclude) {
		label := r.Label
		if label == "" {
			label = "-"
		}
		fmt.Printf("%3d. %-28s %-12s dist=%.4f\n", i+1, r.ID, label, r.Distance)
	}
	return nil
}

func cmdEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	dbPath := fs.String("db", "db.milret", "database path")
	target := fs.String("target", "", "target category (must exist in labels)")
	mode := fs.String("mode", "constrained", "weight mode")
	beta := fs.Float64("beta", 0.5, "sum-constraint level")
	rounds := fs.Int("rounds", 3, "training rounds")
	seed := fs.Int64("seed", 1, "example-selection seed")
	fastLoad := fs.Bool("fast-load", false, "skip the data checksum: zero-copy O(images) open")
	fs.Parse(args)

	db, err := milret.LoadDatabase(*dbPath, milret.Options{VerifyOnLoad: !*fastLoad})
	if err != nil {
		return err
	}
	if *target == "" {
		return fmt.Errorf("-target is required; labels present: %v", db.Labels())
	}
	wm, err := parseMode(*mode)
	if err != nil {
		return err
	}

	// Simple protocol over the whole database: pick positive and negative
	// examples, train, mine false positives, repeat; report metrics over
	// the remaining images. Cap positives so at least half of the target
	// images stay retrievable — otherwise the metrics are vacuous.
	nTarget := 0
	for _, id := range db.IDs() {
		if lb, _ := db.Label(id); lb == *target {
			nTarget++
		}
	}
	if nTarget == 0 {
		return fmt.Errorf("no images labelled %q; labels present: %v", *target, db.Labels())
	}
	nPos := 5
	if nTarget/2 < nPos {
		nPos = nTarget / 2
	}
	if nPos < 1 {
		nPos = 1
	}
	var posIDs, negIDs []string
	for _, id := range shuffledIDs(db, *seed) {
		lb, _ := db.Label(id)
		if lb == *target && len(posIDs) < nPos {
			posIDs = append(posIDs, id)
		}
		if lb != *target && len(negIDs) < 5 {
			negIDs = append(negIDs, id)
		}
	}
	fmt.Printf("using %d positive and %d negative examples; %d %s images remain retrievable\n",
		len(posIDs), len(negIDs), nTarget-len(posIDs), *target)
	var concept *milret.Concept
	for round := 1; round <= *rounds; round++ {
		concept, err = db.Train(posIDs, negIDs, milret.TrainOptions{Mode: wm, Beta: *beta})
		if err != nil {
			return err
		}
		if round == *rounds {
			break
		}
		exclude := append(append([]string{}, posIDs...), negIDs...)
		added := 0
		for _, r := range db.RetrieveExcluding(concept, db.Len(), exclude) {
			if added == 5 {
				break
			}
			if r.Label != *target {
				negIDs = append(negIDs, r.ID)
				added++
			}
		}
		fmt.Printf("round %d: added %d false positives as negatives\n", round, added)
	}
	exclude := append(append([]string{}, posIDs...), negIDs...)
	results := db.RetrieveExcluding(concept, db.Len(), exclude)
	ap := milret.AveragePrecision(results, *target)
	pr := milret.PrecisionRecallCurve(results, *target)
	fmt.Printf("target %q: %d candidates, AP = %.3f\n", *target, len(results), ap)
	for _, g := range []float64{0.1, 0.25, 0.5, 0.75, 1.0} {
		for _, pt := range pr {
			if pt.Recall >= g {
				fmt.Printf("  precision at recall %.2f: %.3f\n", g, pt.Precision)
				break
			}
		}
	}
	return nil
}

func splitIDs(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseMode(s string) (milret.WeightMode, error) {
	switch s {
	case "original":
		return milret.Original, nil
	case "identical":
		return milret.IdenticalWeights, nil
	case "alpha-hack":
		return milret.AlphaHackWeights, nil
	case "constrained":
		return milret.ConstrainedWeights, nil
	}
	return 0, fmt.Errorf("unknown mode %q", s)
}

// shuffledIDs returns the database IDs in a seed-determined order without
// pulling in math/rand's global state.
func shuffledIDs(db *milret.Database, seed int64) []string {
	ids := db.IDs()
	// xorshift-based Fisher-Yates for a stable, dependency-free shuffle.
	state := uint64(seed)*2685821657736338717 + 1
	next := func(n int) int {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return int(state % uint64(n))
	}
	for i := len(ids) - 1; i > 0; i-- {
		j := next(i + 1)
		ids[i], ids[j] = ids[j], ids[i]
	}
	return ids
}
