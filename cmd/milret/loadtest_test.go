package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestLoadtestSmoke runs the whole harness — steady mixed load, warm
// restart, cold restart — against a tiny corpus and checks the report's
// deterministic properties: the warm restart serves every repeat from the
// sidecar-loaded cache (no misses, no training), while the cold restart
// has to retrain each distinct query at least once.
func TestLoadtestSmoke(t *testing.T) {
	dir := t.TempDir()
	dbPath := filepath.Join(dir, "db.milret")
	buildTestStore(t, dbPath)
	outPath := filepath.Join(dir, "report.json")

	err := cmdLoadtest([]string{
		"-db", dbPath,
		"-duration", "1500ms",
		"-concurrency", "2",
		"-queries", "2",
		"-restart-repeats", "6",
		"-mutate-every", "5",
		"-batch-every", "4",
		"-out", outPath,
	})
	if err != nil {
		t.Fatalf("loadtest: %v", err)
	}

	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep ltReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}

	if rep.Steady == nil || rep.Steady.Ops == 0 {
		t.Fatalf("steady phase ran no ops: %+v", rep.Steady)
	}
	if rep.Steady.Errors != 0 {
		t.Fatalf("steady phase had %d errors", rep.Steady.Errors)
	}
	for _, class := range []string{"query-miss", "query-hit", "batch", "mutation"} {
		if rep.Steady.Classes[class] == nil || rep.Steady.Classes[class].Count == 0 {
			t.Fatalf("steady phase missing %q traffic: %v", class, rep.Steady.Classes)
		}
	}

	// Warm restart: every repeat answered from the persisted cache.
	if rep.WarmRestart == nil || rep.WarmRestart.Ops != 6 {
		t.Fatalf("warm restart phase: %+v", rep.WarmRestart)
	}
	if !rep.WarmServedWithoutTraining {
		t.Fatalf("warm restart trained: classes %v", rep.WarmRestart.Classes)
	}
	if hits := rep.WarmRestart.Classes["query-hit"]; hits == nil || hits.Count != 6 {
		t.Fatalf("warm restart hits: %v", rep.WarmRestart.Classes)
	}

	// Cold restart: each distinct query retrains once before repeats hit.
	if rep.ColdRestart == nil || rep.ColdRestart.Errors != 0 {
		t.Fatalf("cold restart phase: %+v", rep.ColdRestart)
	}
	if misses := rep.ColdRestart.Classes["query-miss"]; misses == nil || misses.Count != 2 {
		t.Fatalf("cold restart misses (want one per distinct query): %v", rep.ColdRestart.Classes)
	}

	// The sidecar the warm restart loaded is still on disk next to the db.
	if _, err := os.Stat(dbPath + ".ccache"); err != nil {
		t.Fatalf("sidecar missing after loadtest: %v", err)
	}
}

// TestLoadtestOpenLoop covers the paced (open-loop) generator: a modest
// rate over a short window still produces ops and a rate echo in the
// report.
func TestLoadtestOpenLoop(t *testing.T) {
	dir := t.TempDir()
	dbPath := filepath.Join(dir, "db.milret")
	buildTestStore(t, dbPath)
	outPath := filepath.Join(dir, "report.json")

	err := cmdLoadtest([]string{
		"-db", dbPath,
		"-duration", "900ms",
		"-concurrency", "2",
		"-rate", "40",
		"-queries", "1",
		"-restart-repeats", "2",
		"-out", outPath,
	})
	if err != nil {
		t.Fatalf("loadtest: %v", err)
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep ltReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Steady.Ops == 0 {
		t.Fatal("open-loop phase ran no ops")
	}
	if rep.RatePerSec != 40 {
		t.Fatalf("rate echo = %v", rep.RatePerSec)
	}
}
