package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"milret"
	"milret/internal/store"
	"milret/internal/synth"
)

// buildTestStore featurizes a tiny corpus straight through the library (no
// PNG round trip) and saves it where the serve command can load it.
func buildTestStore(t *testing.T, path string) {
	t.Helper()
	db, err := milret.NewDatabase(milret.Options{Resolution: 6, Regions: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range synth.ObjectsN(13, 2) {
		switch it.Label {
		case "car", "lamp":
			if err := db.AddImage(it.ID, it.Label, it.Image); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
}

// TestServeGracefulShutdown drives the serve loop end to end: real
// listener, real HTTP traffic, a mutation, then a signal — the server must
// drain, flush the acknowledged mutation to the WAL, release the store
// mapping, and return nil.
func TestServeGracefulShutdown(t *testing.T) {
	dir := t.TempDir()
	dbPath := filepath.Join(dir, "db.milret")
	buildTestStore(t, dbPath)

	db, err := milret.LoadDatabase(dbPath, milret.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sig := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() { done <- serveUntilSignal(db, ln, false, sig) }()

	base := fmt.Sprintf("http://%s", ln.Addr())
	get := func(path string) (*http.Response, error) {
		for i := 0; i < 100; i++ {
			resp, err := http.Get(base + path)
			if err == nil {
				return resp, nil
			}
			time.Sleep(10 * time.Millisecond)
		}
		return http.Get(base + path)
	}
	resp, err := get("/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["status"] != "ok" {
		t.Fatalf("health = %v", health)
	}

	// Mutate over HTTP; the 200 acknowledges durability.
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/images/object-car-00", nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d", dresp.StatusCode)
	}

	sig <- os.Interrupt
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down")
	}

	// The connection is refused after shutdown.
	if _, err := http.Get(base + "/v1/healthz"); err == nil {
		t.Fatal("server still accepting after shutdown")
	}
	// The acknowledged mutation survived into the store+WAL pair.
	back, err := milret.LoadDatabase(dbPath, milret.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if _, ok := back.Label("object-car-00"); ok {
		t.Fatal("mutation lost across shutdown")
	}
	if _, _, wrecs, err := store.ReadWAL(store.WALPath(dbPath)); err != nil || len(wrecs) != 1 {
		t.Fatalf("WAL after shutdown: %d recs, %v", len(wrecs), err)
	}
}

// A listener failure (closed underneath the server) must also unwind the
// loop and close the database rather than hanging.
func TestServeListenerFailure(t *testing.T) {
	dir := t.TempDir()
	dbPath := filepath.Join(dir, "db.milret")
	buildTestStore(t, dbPath)
	db, err := milret.LoadDatabase(dbPath, milret.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sig := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() { done <- serveUntilSignal(db, ln, true, sig) }()
	ln.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("listener failure reported no error")
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve loop hung on listener failure")
	}
}
