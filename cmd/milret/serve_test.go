package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"milret"
	"milret/internal/store"
	"milret/internal/synth"
)

// buildTestStore featurizes a tiny corpus straight through the library (no
// PNG round trip) and saves it where the serve command can load it.
func buildTestStore(t *testing.T, path string) {
	t.Helper()
	db, err := milret.NewDatabase(milret.Options{Resolution: 6, Regions: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range synth.ObjectsN(13, 2) {
		switch it.Label {
		case "car", "lamp":
			if err := db.AddImage(it.ID, it.Label, it.Image); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
}

// TestServeGracefulShutdown drives the serve loop end to end: real
// listener, real HTTP traffic, a mutation, then a signal — the server must
// drain, flush the acknowledged mutation to the WAL, release the store
// mapping, and return nil.
func TestServeGracefulShutdown(t *testing.T) {
	dir := t.TempDir()
	dbPath := filepath.Join(dir, "db.milret")
	buildTestStore(t, dbPath)

	db, err := milret.LoadDatabase(dbPath, milret.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sig := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() { done <- serveUntilSignal(db, ln, false, sig) }()

	base := fmt.Sprintf("http://%s", ln.Addr())
	get := func(path string) (*http.Response, error) {
		for i := 0; i < 100; i++ {
			resp, err := http.Get(base + path)
			if err == nil {
				return resp, nil
			}
			time.Sleep(10 * time.Millisecond)
		}
		return http.Get(base + path)
	}
	resp, err := get("/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["status"] != "ok" {
		t.Fatalf("health = %v", health)
	}

	// Mutate over HTTP; the 200 acknowledges durability.
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/images/object-car-00", nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d", dresp.StatusCode)
	}

	sig <- os.Interrupt
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down")
	}

	// The connection is refused after shutdown.
	if _, err := http.Get(base + "/v1/healthz"); err == nil {
		t.Fatal("server still accepting after shutdown")
	}
	// The acknowledged mutation survived into the store+WAL pair.
	back, err := milret.LoadDatabase(dbPath, milret.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if _, ok := back.Label("object-car-00"); ok {
		t.Fatal("mutation lost across shutdown")
	}
	if _, _, wrecs, err := store.ReadWAL(store.WALPath(dbPath)); err != nil || len(wrecs) != 1 {
		t.Fatalf("WAL after shutdown: %d recs, %v", len(wrecs), err)
	}
}

// TestServeWarmRestart drives the restart-storm fix end to end through the
// serve loop: prime the cache over HTTP, shut down (which captures the
// sidecar), bring a second serve loop up on the same store, and the repeat
// query is a cache hit with warm_loaded visible in /v1/stats.
func TestServeWarmRestart(t *testing.T) {
	dir := t.TempDir()
	dbPath := filepath.Join(dir, "db.milret")
	buildTestStore(t, dbPath)
	ccFile := resolveCacheFile("", dbPath, 8)

	startServe := func() (string, chan os.Signal, chan error) {
		t.Helper()
		db, err := milret.LoadDatabase(dbPath, milret.Options{
			ConceptCacheMB: 8, ConceptCacheFile: ccFile,
		})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		sig := make(chan os.Signal, 1)
		done := make(chan error, 1)
		go func() { done <- serveUntilSignal(db, ln, false, sig) }()
		return fmt.Sprintf("http://%s", ln.Addr()), sig, done
	}
	stopServe := func(sig chan os.Signal, done chan error) {
		t.Helper()
		sig <- os.Interrupt
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("shutdown returned %v", err)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("server did not shut down")
		}
	}
	query := func(base string) (code int, cache string) {
		t.Helper()
		body := `{"positives":["object-car-00","object-car-01"],"negatives":["object-lamp-00"],"k":3,"mode":"identical"}`
		var resp *http.Response
		var err error
		for i := 0; i < 100; i++ {
			resp, err = http.Post(base+"/v1/query", "application/json", strings.NewReader(body))
			if err == nil {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out struct {
			Cache string `json:"cache"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, out.Cache
	}

	base, sig, done := startServe()
	if code, cache := query(base); code != http.StatusOK || cache != "miss" {
		t.Fatalf("prime query: %d %q", code, cache)
	}
	stopServe(sig, done)
	if _, err := os.Stat(ccFile); err != nil {
		t.Fatalf("shutdown did not capture the sidecar: %v", err)
	}

	base, sig, done = startServe()
	if code, cache := query(base); code != http.StatusOK || cache != "hit" {
		t.Fatalf("post-restart query: %d %q, want a warm hit", code, cache)
	}
	var stats struct {
		Cache struct {
			WarmLoaded int64 `json:"warm_loaded"`
		} `json:"cache"`
	}
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Cache.WarmLoaded != 1 {
		t.Fatalf("warm_loaded = %d, want 1", stats.Cache.WarmLoaded)
	}
	stopServe(sig, done)
}

// TestServeShutdownUnderLoad pins the force-close path: a client that
// stalls mid-request-body keeps a handler active past the drain timeout,
// and the serve loop must force-close it and still exit cleanly (nil
// error, store released) instead of hanging on the drain.
func TestServeShutdownUnderLoad(t *testing.T) {
	oldTimeout := shutdownDrainTimeout
	shutdownDrainTimeout = 100 * time.Millisecond
	defer func() { shutdownDrainTimeout = oldTimeout }()

	dir := t.TempDir()
	dbPath := filepath.Join(dir, "db.milret")
	buildTestStore(t, dbPath)
	db, err := milret.LoadDatabase(dbPath, milret.Options{ConceptCacheMB: 8})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sig := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() { done <- serveUntilSignal(db, ln, false, sig) }()

	// Wait until the server answers, then park a request: headers promise a
	// body that never arrives, so the handler blocks reading it and the
	// graceful drain cannot finish.
	for i := 0; i < 100; i++ {
		resp, err := http.Get(fmt.Sprintf("http://%s/v1/healthz", ln.Addr()))
		if err == nil {
			resp.Body.Close()
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "POST /v1/query HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\nContent-Length: 512\r\n\r\n{"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the handler reach the body read

	sig <- os.Interrupt
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown under load returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve loop hung: drain never force-closed the stalled connection")
	}
	// The store was released cleanly — it reopens without complaint.
	back, err := milret.LoadDatabase(dbPath, milret.Options{})
	if err != nil {
		t.Fatal(err)
	}
	back.Close()
}

// A listener failure (closed underneath the server) must also unwind the
// loop and close the database rather than hanging.
func TestServeListenerFailure(t *testing.T) {
	dir := t.TempDir()
	dbPath := filepath.Join(dir, "db.milret")
	buildTestStore(t, dbPath)
	db, err := milret.LoadDatabase(dbPath, milret.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sig := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() { done <- serveUntilSignal(db, ln, true, sig) }()
	ln.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("listener failure reported no error")
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve loop hung on listener failure")
	}
}
