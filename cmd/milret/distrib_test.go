package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"milret"
	"milret/internal/server"
	"milret/internal/store"
	"milret/internal/synth"
)

// buildMilretBinary compiles the milret command once per test run.
func buildMilretBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "milret")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// freePort grabs an ephemeral port. The tiny window between Close and
// the server's bind is an accepted test-only race.
func freePort(t *testing.T) int {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := ln.Addr().(*net.TCPAddr).Port
	ln.Close()
	return port
}

// startProc launches the milret binary with args and registers a
// kill-on-cleanup. It returns the running command for explicit
// kill/restart choreography.
func startProc(t *testing.T, bin string, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %v: %v", args, err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	return cmd
}

// waitHealthy polls /v1/healthz until the server answers.
func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("%s never became healthy", base)
}

func postQuery(t *testing.T, base string, req server.QueryRequest) (server.QueryResponse, int) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr server.QueryResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatal(err)
		}
	}
	return qr, resp.StatusCode
}

// TestDistributedEndToEnd runs the full distributed deployment as real
// OS processes: two shard servers (shards 2 and 3) plus a coordinator
// fronting them and two coordinator-local shards, checked bit-identical
// against an in-process scan over the un-sharded source, then kept
// under mixed loadtest traffic while one shard process is killed and
// restarted.
func TestDistributedEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e; skipped in -short")
	}
	bin := buildMilretBinary(t)
	dir := t.TempDir()

	// Source store and its 4-shard layout.
	db, err := milret.NewDatabase(milret.Options{Resolution: 6, Regions: 9})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, it := range synth.ObjectsN(9, 2) {
		if err := db.AddImage(it.ID, it.Label, it.Image); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, it.ID)
	}
	src := filepath.Join(dir, "src.milret")
	if err := db.Save(src); err != nil {
		t.Fatal(err)
	}
	db.Close()
	dst := filepath.Join(dir, "sharded.milret")
	if err := milret.Reshard(src, dst, 4); err != nil {
		t.Fatal(err)
	}
	ref, err := milret.LoadDatabase(src, milret.Options{VerifyOnLoad: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	// Shards 2 and 3 as separate shard-serve processes.
	shardAddrs := make([]string, 2)
	shardCmds := make([]*exec.Cmd, 2)
	shardArgs := make([][]string, 2)
	for i := 0; i < 2; i++ {
		port := freePort(t)
		shardAddrs[i] = fmt.Sprintf("127.0.0.1:%d", port)
		shardArgs[i] = []string{
			"shard-serve",
			"-db", store.ShardPath(dst, 2+i),
			"-addr", shardAddrs[i],
		}
		shardCmds[i] = startProc(t, bin, shardArgs[i]...)
	}
	for _, addr := range shardAddrs {
		waitHealthy(t, "http://"+addr)
	}

	// Coordinator process over 2 local + 2 remote partitions.
	topo := map[string]any{
		"partitions": []map[string]string{
			{"name": "p0", "path": store.ShardPath(dst, 0)},
			{"name": "p1", "path": store.ShardPath(dst, 1)},
			{"name": "p2", "addr": "http://" + shardAddrs[0]},
			{"name": "p3", "addr": "http://" + shardAddrs[1]},
		},
		"partial":            "degrade",
		"rpc_timeout_ms":     1000,
		"health_interval_ms": 200,
	}
	topoBytes, _ := json.Marshal(topo)
	topoPath := filepath.Join(dir, "topology.json")
	if err := os.WriteFile(topoPath, topoBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	coordAddr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	startProc(t, bin, "serve", "-topology", topoPath, "-addr", coordAddr)
	coordBase := "http://" + coordAddr
	waitHealthy(t, coordBase)

	// Bit-identity through the full stack: the coordinator's HTTP answer
	// must carry the in-process scan's exact distances in the exact
	// order. JSON floats round-trip bit-exactly (shortest-representation
	// encoding), so string-level equality of distances is meaningful.
	checkQuery := func(pos, neg []string, k int, ignoreLabels bool) {
		t.Helper()
		got, code := postQuery(t, coordBase, server.QueryRequest{
			Positives: pos, Negatives: neg, K: k, ExcludeExamples: true,
		})
		if code != http.StatusOK {
			t.Fatalf("/v1/query: HTTP %d", code)
		}
		// /v1/query defaults to the constrained weight mode; the
		// reference must train identically.
		concept, err := ref.Train(pos, neg, milret.TrainOptions{Mode: milret.ConstrainedWeights})
		if err != nil {
			t.Fatal(err)
		}
		exclude := append(append([]string{}, pos...), neg...)
		want := ref.RetrieveExcluding(concept, k, exclude)
		if len(got.Results) != len(want) {
			t.Fatalf("distributed answered %d results, in-process %d", len(got.Results), len(want))
		}
		for i := range want {
			g, w := got.Results[i], want[i]
			if g.ID != w.ID || g.Distance != w.Distance || (!ignoreLabels && g.Label != w.Label) {
				t.Fatalf("rank %d: distributed %+v, in-process %+v", i, g, w)
			}
		}
	}
	checkQuery(ids[:2], ids[4:5], 10, false)
	checkQuery(ids[7:9], nil, ref.Len(), false) // exhaustive ranking depth

	// Kill one shard process and restart it under mixed loadtest
	// traffic (queries, batches, label mutations). The degrade policy
	// keeps the coordinator answering throughout; the loadtest reports
	// its own error counts rather than failing.
	ltDone := make(chan error, 1)
	go func() {
		ltDone <- cmdLoadtest([]string{
			"-addr", coordAddr,
			"-duration", "3s",
			"-concurrency", "3",
			"-queries", "4",
		})
	}()
	time.Sleep(500 * time.Millisecond)
	shardCmds[1].Process.Kill()
	shardCmds[1].Wait()
	time.Sleep(500 * time.Millisecond)
	restarted := startProc(t, bin, shardArgs[1]...)
	_ = restarted
	waitHealthy(t, "http://"+shardAddrs[1])
	if err := <-ltDone; err != nil {
		t.Fatalf("loadtest against the coordinator: %v", err)
	}

	// After the restart the full stack must answer bit-identically
	// again (labels may have been mutated by the loadtest; distances
	// and order cannot have).
	checkQuery(ids[1:3], ids[6:7], 10, true)

	// The stats surface reports the partition block.
	resp, err := http.Get(coordBase + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st server.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Partitions) != 4 {
		t.Fatalf("stats partitions = %d rows", len(st.Partitions))
	}
	if st.PartialPolicy != "degrade" {
		t.Errorf("partial policy = %q", st.PartialPolicy)
	}
}
