package main

import (
	"os"
	"path/filepath"
	"testing"

	"milret/internal/store"
)

func TestSplitIDs(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"a", []string{"a"}},
		{"a,b", []string{"a", "b"}},
		{" a , b ,", []string{"a", "b"}},
		{",,", nil},
	}
	for _, tc := range cases {
		got := splitIDs(tc.in)
		if len(got) != len(tc.want) {
			t.Errorf("splitIDs(%q) = %v, want %v", tc.in, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("splitIDs(%q)[%d] = %q, want %q", tc.in, i, got[i], tc.want[i])
			}
		}
	}
}

func TestParseMode(t *testing.T) {
	for _, good := range []string{"original", "identical", "alpha-hack", "constrained"} {
		if _, err := parseMode(good); err != nil {
			t.Errorf("parseMode(%q): %v", good, err)
		}
	}
	if _, err := parseMode("bogus"); err == nil {
		t.Errorf("parseMode accepted bogus mode")
	}
}

func TestReadLabels(t *testing.T) {
	dir := t.TempDir()
	content := "id,label\nimg-1,cat\nimg-2,dog\n\nmalformed-line\n"
	if err := os.WriteFile(filepath.Join(dir, "labels.csv"), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	labels, err := readLabels(dir)
	if err != nil {
		t.Fatal(err)
	}
	if labels["img-1"] != "cat" || labels["img-2"] != "dog" {
		t.Fatalf("labels = %v", labels)
	}
	if _, ok := labels["malformed-line"]; ok {
		t.Fatalf("malformed line should be skipped")
	}
}

func TestReadLabelsMissingFileIsEmpty(t *testing.T) {
	labels, err := readLabels(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 0 {
		t.Fatalf("missing labels.csv should yield empty map, got %v", labels)
	}
}

func TestGenBuildQueryPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("slow CLI pipeline test")
	}
	dir := t.TempDir()
	corpus := filepath.Join(dir, "corpus")
	dbPath := filepath.Join(dir, "db.milret")
	if err := cmdGen([]string{"-kind", "objects", "-dir", corpus, "-per-category", "2", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
	pngs, _ := filepath.Glob(filepath.Join(corpus, "*.png"))
	if len(pngs) != 38 {
		t.Fatalf("gen wrote %d PNGs, want 38", len(pngs))
	}
	if err := cmdBuild([]string{"-dir", corpus, "-db", dbPath, "-regions", "9", "-resolution", "6"}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dbPath); err != nil {
		t.Fatalf("build produced no database: %v", err)
	}
	if err := cmdQuery([]string{"-db", dbPath, "-pos", "object-car-00", "-neg", "object-lamp-00", "-k", "3", "-mode", "identical"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdEval([]string{"-db", dbPath, "-target", "car", "-rounds", "1", "-mode", "identical"}); err != nil {
		t.Fatal(err)
	}
}

// Building with -shards writes a MILRETS1 manifest whose database queries
// and evaluates exactly like a single-file build.
func TestBuildShardedPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("slow CLI pipeline test")
	}
	dir := t.TempDir()
	corpus := filepath.Join(dir, "corpus")
	dbPath := filepath.Join(dir, "db.milret")
	if err := cmdGen([]string{"-kind", "objects", "-dir", corpus, "-per-category", "2", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdBuild([]string{"-dir", corpus, "-db", dbPath, "-regions", "9", "-resolution", "6", "-shards", "3"}); err != nil {
		t.Fatal(err)
	}
	if ok, err := store.IsManifest(dbPath); err != nil || !ok {
		t.Fatalf("sharded build did not write a manifest: %v %v", ok, err)
	}
	for i := 0; i < 3; i++ {
		if _, err := os.Stat(store.ShardPath(dbPath, i)); err != nil {
			t.Fatalf("shard %d snapshot missing: %v", i, err)
		}
	}
	if err := cmdQuery([]string{"-db", dbPath, "-pos", "object-car-00", "-neg", "object-lamp-00", "-k", "3", "-mode", "identical"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdEval([]string{"-db", dbPath, "-target", "car", "-rounds", "1", "-mode", "identical"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdGenRejectsUnknownKind(t *testing.T) {
	if err := cmdGen([]string{"-kind", "fractals", "-dir", t.TempDir()}); err == nil {
		t.Fatalf("unknown corpus kind accepted")
	}
}

func TestCmdBuildEmptyDir(t *testing.T) {
	if err := cmdBuild([]string{"-dir", t.TempDir(), "-db", filepath.Join(t.TempDir(), "x")}); err == nil {
		t.Fatalf("empty corpus dir accepted")
	}
}

func TestCmdQueryRequiresPositives(t *testing.T) {
	dir := t.TempDir()
	corpus := filepath.Join(dir, "corpus")
	dbPath := filepath.Join(dir, "db.milret")
	if err := cmdGen([]string{"-kind", "objects", "-dir", corpus, "-per-category", "1", "-seed", "4"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdBuild([]string{"-dir", corpus, "-db", dbPath, "-regions", "9", "-resolution", "6"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdQuery([]string{"-db", dbPath, "-k", "3"}); err == nil {
		t.Fatalf("query without positives accepted")
	}
}

func TestCmdEvalUnknownTarget(t *testing.T) {
	dir := t.TempDir()
	corpus := filepath.Join(dir, "corpus")
	dbPath := filepath.Join(dir, "db.milret")
	if err := cmdGen([]string{"-kind", "objects", "-dir", corpus, "-per-category", "1", "-seed", "5"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdBuild([]string{"-dir", corpus, "-db", dbPath, "-regions", "9", "-resolution", "6"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdEval([]string{"-db", dbPath, "-target", "unicorn"}); err == nil {
		t.Fatalf("unknown target accepted")
	}
}

func TestShuffledIDsDeterministic(t *testing.T) {
	// shuffledIDs must be stable for a fixed seed and permute for others;
	// exercised through the exported Database indirectly in the pipeline
	// test, here we only verify the PRNG contract on a fake list.
	state := func(seed int64, n int) []int {
		s := uint64(seed)*2685821657736338717 + 1
		next := func(m int) int {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			return int(s % uint64(m))
		}
		out := make([]int, n)
		for i := range out {
			out[i] = next(n)
		}
		return out
	}
	a := state(1, 10)
	b := state(1, 10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("xorshift not deterministic")
		}
	}
}
