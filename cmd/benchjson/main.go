// Command benchjson converts `go test -bench` output into a small JSON
// artifact and compares two such artifacts — the machinery behind the
// committed BENCH_topk.json perf-trajectory file.
//
// Capture mode (default) reads bench output on stdin, keeps benchmarks
// whose name matches -filter, and writes JSON with per-benchmark means plus
// the raw benchfmt lines (so standard tools like benchstat can consume the
// artifact via `jq -r '.benchfmt[]'`):
//
//	go test -run='^$' -bench='TopK|ObjectiveEval' ./... | benchjson -out BENCH_topk.json
//
// With -merge-into, the capture is folded into a baseline archive instead:
// the committed file holds one baseline per cpu context line ({"baselines":
// [...]}), so regenerating numbers on a laptop replaces only the laptop's
// entry and leaves the CI runner's untouched. Legacy single-File artifacts
// load as one-entry archives and upgrade on first merge:
//
//	go test -run='^$' -bench='TopK' ./... | benchjson -merge-into BENCH_topk.json
//
// Compare mode prints an old-vs-new delta table and enforces a regression
// budget: benchmarks whose name matches -gate fail the run (exit 1) when
// their ns/op regresses more than -max-regress percent (default 15) or
// when they vanish from the new snapshot; everything else only warns. This
// is the CI perf gate — tier-1 benchmarks are gated and block the job,
// the long tail is informational.
//
//	benchjson -compare -gate '^Benchmark(TopK10k|QueryCacheHit)$' BENCH_topk.json BENCH_topk.new.json
//
// Setting PERF_GATE=off in the environment downgrades every failure to a
// warning (exit 0) — the documented override for known-noisy runners; the
// deltas are still printed. A missing or unreadable baseline (a fresh
// branch, a failed artifact download) passes with an explicit "(no
// baseline)" report of the new run's numbers; other structural problems
// (no common benchmarks) skip the comparison without failing, and a
// baseline whose recorded cpu context differs from the current run's is
// compared warn-only (cross-machine deltas are meaningless), so the gate
// never blocks bootstrap.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result aggregates one benchmark's samples.
type Result struct {
	// Samples is how many bench lines were folded into the means.
	Samples int `json:"samples"`
	// Iterations is the per-sample iteration count of the last sample.
	Iterations int64 `json:"iterations"`
	// NsPerOp, BPerOp and AllocsPerOp are means across samples.
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"b_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// File is one captured bench run — the unit a comparison works on.
type File struct {
	// Context lines: goos/goarch/pkg/cpu as printed by the bench run.
	Context []string `json:"context,omitempty"`
	// Benchmarks maps bare benchmark names (no -P suffix) to means.
	Benchmarks map[string]Result `json:"benchmarks"`
	// Benchfmt preserves the raw lines for benchstat-style tooling.
	Benchfmt []string `json:"benchfmt"`
}

// Archive is the committed-baseline schema: one File per cpu context line,
// so a baseline regenerated on a laptop does not clobber the CI runner's
// numbers (and vice versa). Legacy single-File artifacts still load — they
// read as a one-entry archive — so old committed baselines keep working.
type Archive struct {
	Baselines []*File `json:"baselines"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

func main() {
	out := flag.String("out", "", "write JSON to this path (default stdout)")
	filter := flag.String("filter", ".", "regexp of benchmark names to keep")
	compare := flag.Bool("compare", false, "compare two artifact files (old new) instead of capturing")
	gate := flag.String("gate", "", "regexp of benchmark names whose regressions fail the comparison (empty = warn only)")
	maxRegress := flag.Float64("max-regress", 15, "ns/op regression percentage beyond which a gated benchmark fails")
	mergeInto := flag.String("merge-into", "", "merge the capture into this baseline archive, replacing the entry for this run's cpu")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two files (old new)")
			os.Exit(2)
		}
		var gateRe *regexp.Regexp
		if *gate != "" {
			var err error
			if gateRe, err = regexp.Compile(*gate); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: bad -gate: %v\n", err)
				os.Exit(2)
			}
		}
		failures, err := compareFiles(flag.Arg(0), flag.Arg(1), gateRe, *maxRegress)
		if err != nil {
			// Structural comparison problems (missing baseline on a fresh
			// branch, disjoint benchmark sets) must not fail the build:
			// report and exit 0.
			fmt.Fprintf(os.Stderr, "benchjson: compare skipped: %v\n", err)
			return
		}
		if len(failures) == 0 {
			return
		}
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "benchjson: PERF GATE: %s\n", f)
		}
		if os.Getenv("PERF_GATE") == "off" {
			fmt.Fprintln(os.Stderr, "benchjson: PERF_GATE=off — reporting only, not failing")
			return
		}
		fmt.Fprintf(os.Stderr, "benchjson: %d gated benchmark(s) regressed beyond %.0f%%; "+
			"regenerate the baseline if the change is intentional (see README), or set PERF_GATE=off for a noisy runner\n",
			len(failures), *maxRegress)
		os.Exit(1)
	}

	keep, err := regexp.Compile(*filter)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: bad -filter: %v\n", err)
		os.Exit(2)
	}
	f, err := capture(os.Stdin, keep)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if *mergeInto != "" {
		if err := mergeBaseline(*mergeInto, f); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		if *out == "" {
			return
		}
	}
	enc, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// mergeBaseline folds one captured run into the archive at path: the entry
// recorded for the same cpu context is replaced, any other machine's entry
// is left untouched, and a legacy single-File artifact upgrades to the
// archive schema on first merge. A missing file starts a fresh archive; a
// corrupt one is an error (silently discarding someone's baselines is worse
// than making the caller look).
func mergeBaseline(path string, f *File) error {
	arch := &Archive{}
	if raw, err := os.ReadFile(path); err == nil {
		if arch, err = parseBaselines(raw, path); err != nil {
			return err
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	cpu := cpuContext(f)
	replaced := false
	for i, b := range arch.Baselines {
		if cpuContext(b) == cpu {
			arch.Baselines[i] = f
			replaced = true
			break
		}
	}
	if !replaced {
		arch.Baselines = append(arch.Baselines, f)
	}
	enc, err := json.MarshalIndent(arch, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(enc, '\n'), 0o644)
}

func capture(r *os.File, keep *regexp.Regexp) (*File, error) {
	f := &File{Benchmarks: map[string]Result{}}
	sums := map[string]*Result{}
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"), strings.HasPrefix(line, "cpu:"):
			f.Context = appendUnique(f.Context, line)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil || !keep.MatchString(m[1]) {
			continue
		}
		f.Benchfmt = append(f.Benchfmt, line)
		name := m[1]
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		agg := sums[name]
		if agg == nil {
			agg = &Result{}
			sums[name] = agg
			order = append(order, name)
		}
		agg.Samples++
		agg.Iterations = iters
		agg.NsPerOp += ns
		if m[4] != "" {
			v, _ := strconv.ParseFloat(m[4], 64)
			agg.BPerOp += v
		}
		if m[5] != "" {
			v, _ := strconv.ParseFloat(m[5], 64)
			agg.AllocsPerOp += v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("no benchmark lines matched")
	}
	for _, name := range order {
		agg := sums[name]
		n := float64(agg.Samples)
		f.Benchmarks[name] = Result{
			Samples:     agg.Samples,
			Iterations:  agg.Iterations,
			NsPerOp:     agg.NsPerOp / n,
			BPerOp:      agg.BPerOp / n,
			AllocsPerOp: agg.AllocsPerOp / n,
		}
	}
	return f, nil
}

func appendUnique(s []string, v string) []string {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

// compareFiles prints the old-vs-new delta table and returns the perf-gate
// failures: gated benchmarks regressing beyond maxRegress percent ns/op,
// and gated benchmarks that disappeared from the new snapshot (a vanished
// benchmark must not silently pass the gate). Ungated regressions beyond
// the threshold are marked "warn" in the table but never returned. A nil
// gate means nothing is gated. Benchmarks present only in the new snapshot
// are listed as fresh (they have no baseline to regress against).
//
// The old side may be a per-cpu baseline archive; the entry matching the
// new run's cpu context is selected (readBaseline), so each runner class
// gates against its own numbers. When the selected baseline's cpu line
// still differs from the run's — no matching entry existed — the ns/op
// comparisons downgrade to warnings: cross-machine deltas are meaningless,
// so a baseline captured on different hardware (bootstrap, a runner-class
// shift) must prompt a baseline regeneration, not block unrelated changes.
// The vanished-benchmark rule is hardware-independent and stays enforced
// even then — including when the two artifacts share no benchmarks at all,
// and per selected baseline: a benchmark only recorded by another
// machine's entry is not demanded of this one.
func compareFiles(oldPath, newPath string, gate *regexp.Regexp, maxRegress float64) ([]string, error) {
	cur, err := readFile(newPath)
	if err != nil {
		return nil, err
	}
	old, err := readBaseline(oldPath, cpuContext(cur))
	if err != nil {
		// No usable baseline — a fresh branch, a renamed artifact, or a
		// baseline that failed to download. None of these are this change's
		// fault, so the gate passes; but a silent pass hides the fact that
		// nothing was compared, so report this run's numbers explicitly.
		reportWithoutBaseline(oldPath, err, cur)
		return nil, nil
	}
	// A baseline captured on different hardware cannot gate ns/op deltas —
	// but whether a gated benchmark still exists is hardware-independent,
	// so only the regression comparisons are downgraded, never the
	// vanished-benchmark rule.
	hwMismatch := false
	if oc, nc := cpuContext(old), cpuContext(cur); gate != nil && oc != "" && nc != "" && oc != nc {
		fmt.Fprintf(os.Stderr, "benchjson: baseline hardware %q differs from this run's %q; "+
			"cross-machine deltas are not gated — regenerate %s from this runner class's bench artifact\n",
			oc, nc, oldPath)
		hwMismatch = true
	}
	names := make([]string, 0, len(old.Benchmarks))
	var removed []string
	for name := range old.Benchmarks {
		if _, ok := cur.Benchmarks[name]; ok {
			names = append(names, name)
		} else {
			removed = append(removed, name)
		}
	}
	gated := func(name string) bool { return gate != nil && gate.MatchString(name) }
	if len(names) == 0 {
		// Nothing to compare. Without a gate this is the bootstrap skip;
		// with one, gated benchmarks vanishing wholesale (a bench-regex
		// edit, a mass rename) must not silently pass, so fall through to
		// the removed-benchmark accounting below.
		anyGated := false
		for _, name := range removed {
			if gated(name) {
				anyGated = true
				break
			}
		}
		if !anyGated {
			return nil, fmt.Errorf("no common benchmarks between %s and %s", oldPath, newPath)
		}
		fmt.Fprintf(os.Stderr, "benchjson: no common benchmarks between %s and %s\n", oldPath, newPath)
	}

	var failures []string
	// Stable presentation order: old file's benchfmt order, fallback sorted.
	ordered := orderFromBenchfmt(old.Benchfmt, names)
	fmt.Printf("%-40s %14s %14s %8s %10s  %s\n", "benchmark", "old ns/op", "new ns/op", "delta", "allocs Δ", "gate")
	for _, name := range ordered {
		o, n := old.Benchmarks[name], cur.Benchmarks[name]
		delta := 0.0
		if o.NsPerOp > 0 {
			delta = (n.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
		}
		verdict := ""
		switch {
		case delta > maxRegress && gated(name) && !hwMismatch:
			verdict = "FAIL"
			failures = append(failures,
				fmt.Sprintf("%s regressed %+.1f%% (%.0f → %.0f ns/op, budget %.0f%%)",
					name, delta, o.NsPerOp, n.NsPerOp, maxRegress))
		case delta > maxRegress:
			verdict = "warn"
		case gated(name):
			verdict = "ok"
		}
		fmt.Printf("%-40s %14.0f %14.0f %+7.1f%% %+10.1f  %s\n",
			name, o.NsPerOp, n.NsPerOp, delta, n.AllocsPerOp-o.AllocsPerOp, verdict)
	}
	sort.Strings(removed)
	for _, name := range removed {
		if gated(name) {
			failures = append(failures, fmt.Sprintf("%s is gated but missing from %s", name, newPath))
		} else {
			fmt.Printf("%-40s %14.0f %14s\n", name, old.Benchmarks[name].NsPerOp, "(removed)")
		}
	}
	var fresh []string
	for name := range cur.Benchmarks {
		if _, ok := old.Benchmarks[name]; !ok {
			fresh = append(fresh, name)
		}
	}
	sort.Strings(fresh)
	for _, name := range fresh {
		fmt.Printf("%-40s %14s %14.0f\n", name, "(no baseline)", cur.Benchmarks[name].NsPerOp)
	}
	return failures, nil
}

// reportWithoutBaseline prints the new run's rows when the baseline could
// not be read: the comparison passes by definition, but the numbers (and
// the reason there is nothing to compare them against) still land in the
// log, so a misconfigured baseline path shows up as a visible "(no
// baseline)" table rather than an empty, green gate.
func reportWithoutBaseline(oldPath string, readErr error, cur *File) {
	fmt.Fprintf(os.Stderr, "benchjson: no usable baseline at %s (%v); reporting this run only — nothing gated\n",
		oldPath, readErr)
	names := make([]string, 0, len(cur.Benchmarks))
	for name := range cur.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("%-40s %14s %14s\n", "benchmark", "old ns/op", "new ns/op")
	for _, name := range orderFromBenchfmt(cur.Benchfmt, names) {
		fmt.Printf("%-40s %14s %14.0f\n", name, "(no baseline)", cur.Benchmarks[name].NsPerOp)
	}
}

// cpuContext returns the artifact's recorded "cpu:" context line, "" when
// the capture carried none.
func cpuContext(f *File) string {
	for _, line := range f.Context {
		if strings.HasPrefix(line, "cpu:") {
			return strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		}
	}
	return ""
}

func orderFromBenchfmt(lines []string, names []string) []string {
	seen := map[string]bool{}
	allowed := map[string]bool{}
	for _, n := range names {
		allowed[n] = true
	}
	var ordered []string
	for _, line := range lines {
		if m := benchLine.FindStringSubmatch(line); m != nil && allowed[m[1]] && !seen[m[1]] {
			seen[m[1]] = true
			ordered = append(ordered, m[1])
		}
	}
	for _, n := range names {
		if !seen[n] {
			ordered = append(ordered, n)
		}
	}
	return ordered
}

// readFile loads one captured run. An archive at this path reads as its
// first baseline — a fresh capture is never an archive, so this only
// triggers when someone hands the committed baseline file as the "new"
// side, and the first entry is the least-surprising pick.
func readFile(path string) (*File, error) {
	arch, err := readArchive(path)
	if err != nil {
		return nil, err
	}
	return arch.Baselines[0], nil
}

// readBaseline loads the baseline entry to compare this run against: the
// archive entry recorded for the same cpu context if there is one, else an
// entry with no recorded cpu (a legacy context-less capture — the gate
// stays armed, as it always did for those), else the first entry, whose
// differing cpu line makes compareFiles downgrade ns/op deltas to warnings
// while the vanished-benchmark rule stays enforced.
func readBaseline(path, cpu string) (*File, error) {
	arch, err := readArchive(path)
	if err != nil {
		return nil, err
	}
	for _, b := range arch.Baselines {
		if cpuContext(b) == cpu {
			return b, nil
		}
	}
	for _, b := range arch.Baselines {
		if cpuContext(b) == "" {
			return b, nil
		}
	}
	return arch.Baselines[0], nil
}

func readArchive(path string) (*Archive, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return parseBaselines(raw, path)
}

// parseBaselines decodes either artifact schema: the {"baselines": [...]}
// archive, or a legacy single-File capture, which reads as a one-entry
// archive. The returned archive always has at least one entry.
func parseBaselines(raw []byte, path string) (*Archive, error) {
	var arch Archive
	if err := json.Unmarshal(raw, &arch); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(arch.Baselines) > 0 {
		return &arch, nil
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if f.Benchmarks == nil {
		return nil, fmt.Errorf("%s: no baselines and no benchmarks", path)
	}
	return &Archive{Baselines: []*File{&f}}, nil
}
