// Command benchjson converts `go test -bench` output into a small JSON
// artifact and compares two such artifacts — the machinery behind the
// committed BENCH_topk.json perf-trajectory file.
//
// Capture mode (default) reads bench output on stdin, keeps benchmarks
// whose name matches -filter, and writes JSON with per-benchmark means plus
// the raw benchfmt lines (so standard tools like benchstat can consume the
// artifact via `jq -r '.benchfmt[]'`):
//
//	go test -run='^$' -bench='TopK|ObjectiveEval' ./... | benchjson -out BENCH_topk.json
//
// Compare mode prints an old-vs-new delta table and always exits 0: perf
// drift is reported, not enforced — the comparison step in CI is
// informational by design.
//
//	benchjson -compare BENCH_topk.json BENCH_topk.new.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result aggregates one benchmark's samples.
type Result struct {
	// Samples is how many bench lines were folded into the means.
	Samples int `json:"samples"`
	// Iterations is the per-sample iteration count of the last sample.
	Iterations int64 `json:"iterations"`
	// NsPerOp, BPerOp and AllocsPerOp are means across samples.
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"b_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// File is the on-disk artifact schema.
type File struct {
	// Context lines: goos/goarch/pkg/cpu as printed by the bench run.
	Context []string `json:"context,omitempty"`
	// Benchmarks maps bare benchmark names (no -P suffix) to means.
	Benchmarks map[string]Result `json:"benchmarks"`
	// Benchfmt preserves the raw lines for benchstat-style tooling.
	Benchfmt []string `json:"benchfmt"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

func main() {
	out := flag.String("out", "", "write JSON to this path (default stdout)")
	filter := flag.String("filter", ".", "regexp of benchmark names to keep")
	compare := flag.Bool("compare", false, "compare two artifact files (old new) instead of capturing")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two files (old new)")
			os.Exit(2)
		}
		if err := compareFiles(flag.Arg(0), flag.Arg(1)); err != nil {
			// Comparison problems (missing baseline on a fresh branch, a
			// renamed benchmark) must not fail the build: report and exit 0.
			fmt.Fprintf(os.Stderr, "benchjson: compare skipped: %v\n", err)
		}
		return
	}

	keep, err := regexp.Compile(*filter)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: bad -filter: %v\n", err)
		os.Exit(2)
	}
	f, err := capture(os.Stdin, keep)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func capture(r *os.File, keep *regexp.Regexp) (*File, error) {
	f := &File{Benchmarks: map[string]Result{}}
	sums := map[string]*Result{}
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"), strings.HasPrefix(line, "cpu:"):
			f.Context = appendUnique(f.Context, line)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil || !keep.MatchString(m[1]) {
			continue
		}
		f.Benchfmt = append(f.Benchfmt, line)
		name := m[1]
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		agg := sums[name]
		if agg == nil {
			agg = &Result{}
			sums[name] = agg
			order = append(order, name)
		}
		agg.Samples++
		agg.Iterations = iters
		agg.NsPerOp += ns
		if m[4] != "" {
			v, _ := strconv.ParseFloat(m[4], 64)
			agg.BPerOp += v
		}
		if m[5] != "" {
			v, _ := strconv.ParseFloat(m[5], 64)
			agg.AllocsPerOp += v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("no benchmark lines matched")
	}
	for _, name := range order {
		agg := sums[name]
		n := float64(agg.Samples)
		f.Benchmarks[name] = Result{
			Samples:     agg.Samples,
			Iterations:  agg.Iterations,
			NsPerOp:     agg.NsPerOp / n,
			BPerOp:      agg.BPerOp / n,
			AllocsPerOp: agg.AllocsPerOp / n,
		}
	}
	return f, nil
}

func appendUnique(s []string, v string) []string {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

func compareFiles(oldPath, newPath string) error {
	old, err := readFile(oldPath)
	if err != nil {
		return err
	}
	cur, err := readFile(newPath)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(old.Benchmarks))
	for name := range old.Benchmarks {
		if _, ok := cur.Benchmarks[name]; ok {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return fmt.Errorf("no common benchmarks between %s and %s", oldPath, newPath)
	}
	// Stable presentation order: old file's benchfmt order, fallback sorted.
	ordered := orderFromBenchfmt(old.Benchfmt, names)
	fmt.Printf("%-40s %14s %14s %8s %10s\n", "benchmark", "old ns/op", "new ns/op", "delta", "allocs Δ")
	for _, name := range ordered {
		o, n := old.Benchmarks[name], cur.Benchmarks[name]
		delta := 0.0
		if o.NsPerOp > 0 {
			delta = (n.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
		}
		fmt.Printf("%-40s %14.0f %14.0f %+7.1f%% %+10.1f\n",
			name, o.NsPerOp, n.NsPerOp, delta, n.AllocsPerOp-o.AllocsPerOp)
	}
	return nil
}

func orderFromBenchfmt(lines []string, names []string) []string {
	seen := map[string]bool{}
	allowed := map[string]bool{}
	for _, n := range names {
		allowed[n] = true
	}
	var ordered []string
	for _, line := range lines {
		if m := benchLine.FindStringSubmatch(line); m != nil && allowed[m[1]] && !seen[m[1]] {
			seen[m[1]] = true
			ordered = append(ordered, m[1])
		}
	}
	for _, n := range names {
		if !seen[n] {
			ordered = append(ordered, n)
		}
	}
	return ordered
}

func readFile(path string) (*File, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}
