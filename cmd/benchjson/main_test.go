package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func writeArtifact(t *testing.T, dir, name string, benches map[string]Result) string {
	t.Helper()
	return writeArtifactCtx(t, dir, name, benches, nil)
}

func writeArtifactCtx(t *testing.T, dir, name string, benches map[string]Result, context []string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	raw, err := json.Marshal(File{Benchmarks: benches, Context: context})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareGate(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeArtifact(t, dir, "old.json", map[string]Result{
		"BenchmarkTopK10k":    {Samples: 1, NsPerOp: 1000},
		"BenchmarkTopK50k":    {Samples: 1, NsPerOp: 5000},
		"BenchmarkSideshow":   {Samples: 1, NsPerOp: 100},
		"BenchmarkVanished":   {Samples: 1, NsPerOp: 10},
		"BenchmarkGatedFlaky": {Samples: 1, NsPerOp: 10},
	})
	gate := regexp.MustCompile(`^Benchmark(TopK10k|TopK50k|GatedFlaky)$`)

	t.Run("passes within budget", func(t *testing.T) {
		newPath := writeArtifact(t, dir, "ok.json", map[string]Result{
			"BenchmarkTopK10k":    {Samples: 1, NsPerOp: 1100}, // +10% — inside a 15% budget
			"BenchmarkTopK50k":    {Samples: 1, NsPerOp: 4000}, // improvement
			"BenchmarkSideshow":   {Samples: 1, NsPerOp: 900},  // +800% but ungated: warn only
			"BenchmarkVanished":   {Samples: 1, NsPerOp: 10},
			"BenchmarkGatedFlaky": {Samples: 1, NsPerOp: 11},
			"BenchmarkBrandNew":   {Samples: 1, NsPerOp: 42}, // no baseline: never a failure
		})
		failures, err := compareFiles(oldPath, newPath, gate, 15)
		if err != nil {
			t.Fatal(err)
		}
		if len(failures) != 0 {
			t.Fatalf("unexpected failures: %v", failures)
		}
	})

	t.Run("fails on injected regression", func(t *testing.T) {
		newPath := writeArtifact(t, dir, "regressed.json", map[string]Result{
			"BenchmarkTopK10k":    {Samples: 1, NsPerOp: 1200}, // +20% > 15%: gated failure
			"BenchmarkTopK50k":    {Samples: 1, NsPerOp: 5100}, // +2%: fine
			"BenchmarkSideshow":   {Samples: 1, NsPerOp: 100},
			"BenchmarkVanished":   {Samples: 1, NsPerOp: 10},
			"BenchmarkGatedFlaky": {Samples: 1, NsPerOp: 10},
		})
		failures, err := compareFiles(oldPath, newPath, gate, 15)
		if err != nil {
			t.Fatal(err)
		}
		if len(failures) != 1 || !strings.Contains(failures[0], "BenchmarkTopK10k") {
			t.Fatalf("failures = %v, want exactly the TopK10k regression", failures)
		}
	})

	t.Run("custom threshold", func(t *testing.T) {
		newPath := writeArtifact(t, dir, "threshold.json", map[string]Result{
			"BenchmarkTopK10k":    {Samples: 1, NsPerOp: 1100}, // +10%
			"BenchmarkTopK50k":    {Samples: 1, NsPerOp: 5000},
			"BenchmarkSideshow":   {Samples: 1, NsPerOp: 100},
			"BenchmarkVanished":   {Samples: 1, NsPerOp: 10},
			"BenchmarkGatedFlaky": {Samples: 1, NsPerOp: 10},
		})
		failures, err := compareFiles(oldPath, newPath, gate, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(failures) != 1 || !strings.Contains(failures[0], "BenchmarkTopK10k") {
			t.Fatalf("failures at 5%% budget = %v", failures)
		}
	})

	t.Run("gated benchmark missing from new run fails", func(t *testing.T) {
		newPath := writeArtifact(t, dir, "missing.json", map[string]Result{
			"BenchmarkTopK10k":  {Samples: 1, NsPerOp: 1000},
			"BenchmarkTopK50k":  {Samples: 1, NsPerOp: 5000},
			"BenchmarkSideshow": {Samples: 1, NsPerOp: 100},
			"BenchmarkVanished": {Samples: 1, NsPerOp: 10},
			// BenchmarkGatedFlaky gone
		})
		failures, err := compareFiles(oldPath, newPath, gate, 15)
		if err != nil {
			t.Fatal(err)
		}
		if len(failures) != 1 || !strings.Contains(failures[0], "BenchmarkGatedFlaky") {
			t.Fatalf("failures = %v, want the missing gated benchmark", failures)
		}
	})

	t.Run("different hardware downgrades the gate", func(t *testing.T) {
		benches := map[string]Result{"BenchmarkTopK10k": {Samples: 1, NsPerOp: 9000}} // +800%
		devBase := writeArtifactCtx(t, dir, "devbox.json", map[string]Result{
			"BenchmarkTopK10k": {Samples: 1, NsPerOp: 1000},
		}, []string{"cpu: Intel(R) Xeon(R) Processor @ 2.10GHz"})
		ciRun := writeArtifactCtx(t, dir, "cirun.json", benches,
			[]string{"cpu: AMD EPYC 7763 64-Core Processor"})
		failures, err := compareFiles(devBase, ciRun, gate, 15)
		if err != nil {
			t.Fatal(err)
		}
		if len(failures) != 0 {
			t.Fatalf("cross-hardware comparison gated: %v", failures)
		}
		// Same hardware string: the gate stays armed.
		sameBase := writeArtifactCtx(t, dir, "samebox.json", map[string]Result{
			"BenchmarkTopK10k": {Samples: 1, NsPerOp: 1000},
		}, []string{"cpu: AMD EPYC 7763 64-Core Processor"})
		failures, err = compareFiles(sameBase, ciRun, gate, 15)
		if err != nil {
			t.Fatal(err)
		}
		if len(failures) != 1 {
			t.Fatalf("same-hardware regression not gated: %v", failures)
		}
	})

	t.Run("nil gate warns only", func(t *testing.T) {
		newPath := writeArtifact(t, dir, "ungated.json", map[string]Result{
			"BenchmarkTopK10k": {Samples: 1, NsPerOp: 9000}, // +800%
		})
		failures, err := compareFiles(oldPath, newPath, nil, 15)
		if err != nil {
			t.Fatal(err)
		}
		if len(failures) != 0 {
			t.Fatalf("nil gate produced failures: %v", failures)
		}
	})

	t.Run("disjoint sets skip without a gate", func(t *testing.T) {
		newPath := writeArtifact(t, dir, "disjoint.json", map[string]Result{
			"BenchmarkElsewhere": {Samples: 1, NsPerOp: 1},
		})
		if _, err := compareFiles(oldPath, newPath, nil, 15); err == nil {
			t.Fatal("disjoint artifacts should report a structural error")
		}
	})

	t.Run("disjoint sets fail for vanished gated benchmarks", func(t *testing.T) {
		newPath := writeArtifact(t, dir, "disjoint2.json", map[string]Result{
			"BenchmarkElsewhere": {Samples: 1, NsPerOp: 1},
		})
		failures, err := compareFiles(oldPath, newPath, gate, 15)
		if err != nil {
			t.Fatal(err)
		}
		if len(failures) != 3 { // TopK10k, TopK50k, GatedFlaky all gone
			t.Fatalf("failures = %v, want the three vanished gated benchmarks", failures)
		}
	})

	t.Run("hardware mismatch keeps the vanish rule", func(t *testing.T) {
		devBase := writeArtifactCtx(t, dir, "devbase2.json", map[string]Result{
			"BenchmarkTopK10k": {Samples: 1, NsPerOp: 1000},
			"BenchmarkTopK50k": {Samples: 1, NsPerOp: 5000},
		}, []string{"cpu: Intel(R) Xeon(R) Processor @ 2.10GHz"})
		ciRun := writeArtifactCtx(t, dir, "cirun2.json", map[string]Result{
			"BenchmarkTopK10k": {Samples: 1, NsPerOp: 9000}, // +800%, but cross-hw
			// BenchmarkTopK50k vanished
		}, []string{"cpu: AMD EPYC 7763 64-Core Processor"})
		failures, err := compareFiles(devBase, ciRun, gate, 15)
		if err != nil {
			t.Fatal(err)
		}
		if len(failures) != 1 || !strings.Contains(failures[0], "BenchmarkTopK50k") {
			t.Fatalf("failures = %v, want only the vanished gated benchmark", failures)
		}
	})

	t.Run("missing baseline reports and passes", func(t *testing.T) {
		failures, err := compareFiles(filepath.Join(dir, "nope.json"), oldPath, gate, 15)
		if err != nil {
			t.Fatalf("missing baseline must not be an error: %v", err)
		}
		if len(failures) != 0 {
			t.Fatalf("missing baseline produced gate failures: %v", failures)
		}
	})

	t.Run("corrupt baseline reports and passes", func(t *testing.T) {
		garbled := filepath.Join(dir, "garbled.json")
		if err := os.WriteFile(garbled, []byte("{not json"), 0o644); err != nil {
			t.Fatal(err)
		}
		failures, err := compareFiles(garbled, oldPath, gate, 15)
		if err != nil {
			t.Fatalf("corrupt baseline must not be an error: %v", err)
		}
		if len(failures) != 0 {
			t.Fatalf("corrupt baseline produced gate failures: %v", failures)
		}
	})

	t.Run("unreadable new snapshot is still an error", func(t *testing.T) {
		if _, err := compareFiles(oldPath, filepath.Join(dir, "nope.json"), gate, 15); err == nil {
			t.Fatal("a missing new snapshot means the bench run itself broke; that must surface")
		}
	})
}

func writeArchive(t *testing.T, dir, name string, baselines ...*File) string {
	t.Helper()
	path := filepath.Join(dir, name)
	raw, err := json.Marshal(Archive{Baselines: baselines})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestArchiveSelectsBaselineByCPU(t *testing.T) {
	dir := t.TempDir()
	const xeon = "cpu: Intel(R) Xeon(R) Processor @ 2.10GHz"
	const epyc = "cpu: AMD EPYC 7763 64-Core Processor"
	gate := regexp.MustCompile(`^BenchmarkTopK10k$`)
	archive := writeArchive(t, dir, "base.json",
		&File{Context: []string{xeon}, Benchmarks: map[string]Result{
			"BenchmarkTopK10k": {Samples: 1, NsPerOp: 1000},
		}},
		&File{Context: []string{epyc}, Benchmarks: map[string]Result{
			"BenchmarkTopK10k": {Samples: 1, NsPerOp: 4000},
		}},
	)

	t.Run("matching entry gates fully", func(t *testing.T) {
		// 1200 ns/op: +20% against the Xeon entry, a big improvement
		// against the EPYC one — only the matching entry may decide.
		run := writeArtifactCtx(t, dir, "xeonrun.json", map[string]Result{
			"BenchmarkTopK10k": {Samples: 1, NsPerOp: 1200},
		}, []string{xeon})
		failures, err := compareFiles(archive, run, gate, 15)
		if err != nil {
			t.Fatal(err)
		}
		if len(failures) != 1 || !strings.Contains(failures[0], "BenchmarkTopK10k") {
			t.Fatalf("failures = %v, want the Xeon-entry regression", failures)
		}
	})

	t.Run("second entry selected for its machine", func(t *testing.T) {
		run := writeArtifactCtx(t, dir, "epycrun.json", map[string]Result{
			"BenchmarkTopK10k": {Samples: 1, NsPerOp: 4200}, // +5% vs EPYC entry
		}, []string{epyc})
		failures, err := compareFiles(archive, run, gate, 15)
		if err != nil {
			t.Fatal(err)
		}
		if len(failures) != 0 {
			t.Fatalf("EPYC run gated against the wrong entry: %v", failures)
		}
	})

	t.Run("unknown machine downgrades to warnings", func(t *testing.T) {
		run := writeArtifactCtx(t, dir, "otherrun.json", map[string]Result{
			"BenchmarkTopK10k": {Samples: 1, NsPerOp: 9000},
		}, []string{"cpu: Apple M2"})
		failures, err := compareFiles(archive, run, gate, 15)
		if err != nil {
			t.Fatal(err)
		}
		if len(failures) != 0 {
			t.Fatalf("cross-machine deltas were gated: %v", failures)
		}
	})

	t.Run("vanished rule enforced per selected baseline", func(t *testing.T) {
		// The Xeon entry also records a gated benchmark the EPYC entry
		// lacks; an EPYC run must not be failed for not reporting it, but
		// must be failed for dropping one its own entry records.
		gate2 := regexp.MustCompile(`^Benchmark(TopK10k|XeonOnly)$`)
		arch2 := writeArchive(t, dir, "base2.json",
			&File{Context: []string{xeon}, Benchmarks: map[string]Result{
				"BenchmarkTopK10k":  {Samples: 1, NsPerOp: 1000},
				"BenchmarkXeonOnly": {Samples: 1, NsPerOp: 7},
			}},
			&File{Context: []string{epyc}, Benchmarks: map[string]Result{
				"BenchmarkTopK10k": {Samples: 1, NsPerOp: 4000},
			}},
		)
		run := writeArtifactCtx(t, dir, "epycrun2.json", map[string]Result{
			"BenchmarkTopK10k": {Samples: 1, NsPerOp: 4100},
		}, []string{epyc})
		failures, err := compareFiles(arch2, run, gate2, 15)
		if err != nil {
			t.Fatal(err)
		}
		if len(failures) != 0 {
			t.Fatalf("EPYC run held to the Xeon entry's benchmark set: %v", failures)
		}
		empty := writeArtifactCtx(t, dir, "epycempty.json", map[string]Result{
			"BenchmarkOther": {Samples: 1, NsPerOp: 1},
		}, []string{epyc})
		failures, err = compareFiles(arch2, empty, gate2, 15)
		if err != nil {
			t.Fatal(err)
		}
		if len(failures) != 1 || !strings.Contains(failures[0], "BenchmarkTopK10k") {
			t.Fatalf("failures = %v, want the EPYC entry's vanished benchmark", failures)
		}
	})
}

func TestMergeBaseline(t *testing.T) {
	dir := t.TempDir()
	const xeon = "cpu: Intel(R) Xeon(R) Processor @ 2.10GHz"
	const epyc = "cpu: AMD EPYC 7763 64-Core Processor"
	path := filepath.Join(dir, "base.json")

	xeonRun := &File{Context: []string{xeon}, Benchmarks: map[string]Result{
		"BenchmarkTopK10k": {Samples: 1, NsPerOp: 1000},
	}}
	if err := mergeBaseline(path, xeonRun); err != nil {
		t.Fatal(err)
	}
	epycRun := &File{Context: []string{epyc}, Benchmarks: map[string]Result{
		"BenchmarkTopK10k": {Samples: 1, NsPerOp: 4000},
	}}
	if err := mergeBaseline(path, epycRun); err != nil {
		t.Fatal(err)
	}
	// Re-capturing on the Xeon replaces its entry and leaves the EPYC's.
	xeonRun2 := &File{Context: []string{xeon}, Benchmarks: map[string]Result{
		"BenchmarkTopK10k": {Samples: 1, NsPerOp: 900},
	}}
	if err := mergeBaseline(path, xeonRun2); err != nil {
		t.Fatal(err)
	}
	arch, err := readArchive(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(arch.Baselines) != 2 {
		t.Fatalf("archive holds %d baselines, want 2", len(arch.Baselines))
	}
	if got, err := readBaseline(path, strings.TrimPrefix(xeon, "cpu: ")); err != nil ||
		got.Benchmarks["BenchmarkTopK10k"].NsPerOp != 900 {
		t.Fatalf("Xeon entry after re-merge = %+v, %v", got, err)
	}
	if got, err := readBaseline(path, strings.TrimPrefix(epyc, "cpu: ")); err != nil ||
		got.Benchmarks["BenchmarkTopK10k"].NsPerOp != 4000 {
		t.Fatalf("EPYC entry clobbered by the Xeon merge: %+v, %v", got, err)
	}

	t.Run("legacy artifact upgrades on first merge", func(t *testing.T) {
		legacy := writeArtifactCtx(t, dir, "legacy.json", map[string]Result{
			"BenchmarkTopK10k": {Samples: 1, NsPerOp: 2000},
		}, []string{xeon})
		if err := mergeBaseline(legacy, epycRun); err != nil {
			t.Fatal(err)
		}
		arch, err := readArchive(legacy)
		if err != nil {
			t.Fatal(err)
		}
		if len(arch.Baselines) != 2 {
			t.Fatalf("upgraded archive holds %d baselines, want legacy + new", len(arch.Baselines))
		}
	})

	t.Run("corrupt archive refuses to merge", func(t *testing.T) {
		bad := filepath.Join(dir, "bad.json")
		if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := mergeBaseline(bad, xeonRun); err == nil {
			t.Fatal("merging into a corrupt archive must error, not clobber it")
		}
	})
}

func TestCaptureParsesBenchOutput(t *testing.T) {
	dir := t.TempDir()
	raw := `goos: linux
goarch: amd64
pkg: milret
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTopK10k-4   	     720	   1663810 ns/op	    3100 B/op	      42 allocs/op
BenchmarkTopK10k-4   	     700	   1700000 ns/op	    3100 B/op	      42 allocs/op
BenchmarkIgnored-4   	       1	       100 ns/op
PASS
`
	path := filepath.Join(dir, "bench.out")
	if err := os.WriteFile(path, []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := capture(f, regexp.MustCompile("TopK"))
	if err != nil {
		t.Fatal(err)
	}
	r, ok := got.Benchmarks["BenchmarkTopK10k"]
	if !ok {
		t.Fatalf("TopK10k not captured: %+v", got.Benchmarks)
	}
	if r.Samples != 2 || r.NsPerOp != (1663810+1700000)/2.0 || r.AllocsPerOp != 42 {
		t.Fatalf("aggregate = %+v", r)
	}
	if _, ok := got.Benchmarks["BenchmarkIgnored"]; ok {
		t.Fatal("filtered benchmark captured")
	}
	if len(got.Context) != 4 || len(got.Benchfmt) != 2 {
		t.Fatalf("context %d lines, benchfmt %d lines", len(got.Context), len(got.Benchfmt))
	}
}
