// Package fixture seeds one violation per milret analyzer; the e2e
// test asserts that milretlint surfaces each of them when driven
// through `go vet -vettool`.
package fixture

import (
	"math"
	"os"
	"sync"
	"sync/atomic"
)

type shard struct {
	mu sync.Mutex

	// milret:guarded-by mu
	items []int

	hits atomic.Uint64
}

// BadAdd mutates a guarded field without the lock (guardcheck).
func (s *shard) BadAdd(v int) {
	s.items = append(s.items, v)
}

// BadCount copies an atomic wrapper by value (atomicfield).
func (s *shard) BadCount() atomic.Uint64 {
	return s.hits
}

// BadSave hand-rolls a rename with no fsync discipline (durably).
func BadSave(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// BadPublish claims the audited idiom but skips both fsyncs (durably).
//
// milret:atomic-rename
func BadPublish(tmp *os.File, path string) error {
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// BadKernel fuses rounding inside a kernel (kernelpure).
//
// milret:kernel
func BadKernel(a, b, c float64) float64 {
	return math.FMA(a, b, c)
}
