module milretlint.example/fixture

go 1.24
