module milretlint.example/clean

go 1.24
