// Package clean holds disciplined counterparts of every fixture
// violation; the e2e test asserts milretlint passes it silently.
package clean

import (
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

type box struct {
	mu sync.Mutex

	// milret:guarded-by mu
	n int

	hits atomic.Uint64
}

// Inc mutates under the lock.
func (b *box) Inc() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n++
}

// Hits uses the wrapper's methods.
func (b *box) Hits() uint64 {
	return b.hits.Load()
}

func syncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// AtomicWrite is the complete audited rename sequence.
//
// milret:atomic-rename
func AtomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), "w-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}
