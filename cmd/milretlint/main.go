// milretlint is the multichecker for the milret analyzers
// (internal/lint): guardcheck, durably, kernelpure, atomicfield,
// pkgdoc.
//
// It runs in two modes:
//
//	go vet -vettool=$(command -v milretlint) ./...
//
// speaks cmd/go's vet unit-checker protocol (the single *.cfg
// argument), analyzing each package — test files included — with the
// export data cmd/go already compiled. This is the blocking CI mode.
//
//	milretlint ./...
//
// is the standalone mode: package patterns are resolved through
// `go list -e -deps -export -json`, so it needs a go toolchain on
// PATH but no precompiled anything. Convenient locally; note it
// analyzes non-test files only (go list does not expand test
// variants) — the vet mode is authoritative.
//
// Exit status: 0 clean, 1 internal error, 2 diagnostics reported.
package main

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// cmd/go probes the tool twice before using it: `-V=full` must
	// print a version line fingerprinting this build (it keys vet's
	// result cache), and `-flags` must list the tool's flags as JSON
	// (we expose none).
	for _, a := range args {
		if a == "-V=full" || a == "-V" {
			printVersion()
			return 0
		}
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return 0
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return runUnitChecker(args[0])
	}
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: milretlint <packages>   (or via go vet -vettool)")
		return 1
	}
	return runStandalone(args)
}

// printVersion emits "<name> version devel buildID=<sha256-of-binary>"
// — the shape cmd/go's toolID parser expects, with a fingerprint that
// changes whenever the tool is rebuilt so stale vet caches cannot
// survive an analyzer change.
func printVersion() {
	name := filepath.Base(os.Args[0])
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%x\n", name, h.Sum(nil))
}
