package main

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles the vettool into a temp dir. The go build cache
// makes repeat builds within one test run nearly free.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "milretlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building milretlint: %v\n%s", err, out)
	}
	return bin
}

// TestVersionProtocol checks the -V=full probe cmd/go uses to
// fingerprint the tool for its vet result cache.
func TestVersionProtocol(t *testing.T) {
	bin := buildTool(t)
	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	got := string(out)
	if !strings.HasPrefix(got, "milretlint version ") || !strings.Contains(got, "buildID=") {
		t.Fatalf("-V=full output %q does not fingerprint the tool", got)
	}
}

// TestFlagsProtocol checks the -flags probe cmd/go uses to discover
// tool flags.
func TestFlagsProtocol(t *testing.T) {
	bin := buildTool(t)
	out, err := exec.Command(bin, "-flags").Output()
	if err != nil {
		t.Fatalf("-flags: %v", err)
	}
	if strings.TrimSpace(string(out)) != "[]" {
		t.Fatalf("-flags printed %q, want []", out)
	}
}

// wantFixtureDiags is what every driver mode must report for the
// seeded fixture module: one violation per analyzer, with the durably
// helper missing both halves of the fsync discipline.
var wantFixtureDiags = []string{
	"milretlint:guardcheck",
	"milretlint:durably",
	"milretlint:kernelpure",
	"milretlint:atomicfield",
	"write to s.items without s.mu held",
	"os.Rename outside a milret:atomic-rename helper",
	"without a preceding Sync",
	"without a following directory fsync",
	"math.FMA in a milret:kernel function",
	"hits used as a value",
}

// TestVetFixtureModule drives the tool the way CI does — through
// `go vet -vettool` — over a module seeded with one violation per
// analyzer, and asserts the run fails with each diagnostic.
func TestVetFixtureModule(t *testing.T) {
	bin := buildTool(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = filepath.Join("testdata", "fixturemod")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err == nil {
		t.Fatalf("go vet over the seeded fixture module succeeded; want failure\nstderr:\n%s", stderr.String())
	}
	for _, want := range wantFixtureDiags {
		if !strings.Contains(stderr.String(), want) {
			t.Errorf("go vet stderr missing %q\nstderr:\n%s", want, stderr.String())
		}
	}
}

// TestVetCleanModule asserts the disciplined module passes the whole
// suite with exit status 0.
func TestVetCleanModule(t *testing.T) {
	bin := buildTool(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = filepath.Join("testdata", "cleanmod")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("go vet over the clean module failed: %v\nstderr:\n%s", err, stderr.String())
	}
}

// TestStandaloneFixtureModule drives the standalone (go list) mode
// over the same seeded module and asserts the diagnostic exit code.
func TestStandaloneFixtureModule(t *testing.T) {
	bin := buildTool(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = filepath.Join("testdata", "fixturemod")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("standalone run: err=%v, want exit status 2\nstderr:\n%s", err, stderr.String())
	}
	if code := ee.ExitCode(); code != 2 {
		t.Fatalf("standalone exit code = %d, want 2\nstderr:\n%s", code, stderr.String())
	}
	for _, want := range wantFixtureDiags {
		if !strings.Contains(stderr.String(), want) {
			t.Errorf("standalone stderr missing %q\nstderr:\n%s", want, stderr.String())
		}
	}
}
