package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// listPkg is the subset of `go list -json` output the standalone
// driver needs.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	ImportMap  map[string]string
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

// runStandalone resolves package patterns with the go tool, compiling
// export data for every dependency as a side effect, then analyzes
// each matched package from source.
func runStandalone(patterns []string) int {
	args := append([]string{"list", "-e", "-deps", "-export", "-json=ImportPath,Dir,GoFiles,ImportMap,Export,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "milretlint: go list: %v\n", err)
		return 1
	}

	exports := make(map[string]string)
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var p listPkg
		if err := dec.Decode(&p); err != nil {
			fmt.Fprintf(os.Stderr, "milretlint: decoding go list output: %v\n", err)
			return 1
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	exit := 0
	for _, p := range targets {
		if p.Error != nil {
			fmt.Fprintf(os.Stderr, "milretlint: %s: %s\n", p.ImportPath, p.Error.Err)
			exit = 1
			continue
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		code := analyzePkg(p, exports)
		if code > exit {
			exit = code
		}
	}
	return exit
}

func analyzePkg(p listPkg, exports map[string]string) int {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if c, ok := p.ImportMap[path]; ok {
			path = c
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	diags, errs := analyze(fset, files, p.ImportPath, "", imp)
	if len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, e)
		}
		return 1
	}
	return printDiags(fset, diags)
}
