package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"milret/internal/lint"
)

// vetConfig mirrors the JSON cmd/go writes to <objdir>/vet.cfg for
// each package when driving a vet tool (see cmd/go/internal/work and
// x/tools' unitchecker, which define the de-facto schema).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnitChecker analyzes the single package described by cfgPath.
func runUnitChecker(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "milretlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// cmd/go expects the facts ("vetx") output to exist afterwards even
	// though these analyzers exchange no facts across packages.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("milretlint-no-facts\n"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		files = append(files, f)
	}

	// Imports resolve through the export data cmd/go already compiled:
	// source import path -> canonical path (ImportMap) -> export file
	// (PackageFile). The gc importer handles the archive framing.
	imp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		if p, ok := cfg.ImportMap[path]; ok {
			path = p
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	diags, errs := analyze(fset, files, cfg.ImportPath, cfg.GoVersion, imp)
	if len(errs) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, e)
		}
		return 1
	}
	return printDiags(fset, diags)
}

// analyze type-checks one package and runs every milret analyzer over
// it. Type errors are returned rather than printed so each driver can
// apply its own policy.
func analyze(fset *token.FileSet, files []*ast.File, path, goVersion string, imp types.Importer) ([]lint.Diagnostic, []error) {
	var typeErrs []error
	conf := types.Config{
		Importer:  imp,
		GoVersion: goVersion,
		Error:     func(err error) { typeErrs = append(typeErrs, err) },
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, _ := conf.Check(path, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, typeErrs
	}
	diags, err := lint.Run(fset, files, pkg, info, lint.All())
	if err != nil {
		return nil, []error{err}
	}
	return diags, nil
}

// printDiags writes diagnostics in the conventional vet shape and
// returns the exit code cmd/go expects: 2 when anything was reported.
func printDiags(fset *token.FileSet, diags []lint.Diagnostic) int {
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [milretlint:%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	return 2
}
