// Command experiments regenerates the paper's tables and figures as text
// tables (and optionally CSV files). Each experiment ID corresponds to one
// table or figure of the paper; see DESIGN.md for the index.
//
// Usage:
//
//	experiments                 # run everything at quick scale
//	experiments -run Fig48      # one experiment
//	experiments -scale full     # paper-scale corpora (slow)
//	experiments -csv out/       # also write CSV files per table
//	experiments -parallelism 4  # bound training/ranking goroutines
//
// Every experiment's completion line reports wall-clock time plus the
// objective evaluations each trainer performed and its evals/sec — the
// hardware-independent training-cost proxy, and the number that moves when
// the distance kernel gets faster.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"milret/internal/core"
	"milret/internal/experiments"
)

func main() {
	runID := flag.String("run", "all", "experiment ID to run, or 'all'")
	scale := flag.String("scale", "quick", "scale: quick, full or bench")
	seed := flag.Int64("seed", 1998, "master seed for corpora and splits")
	csvDir := flag.String("csv", "", "directory to also write per-table CSV files")
	parallelism := flag.Int("parallelism", 0, "bound concurrent training/ranking goroutines (0 = NumCPU)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Println(e.ID)
		}
		return
	}

	cfg := experiments.Config{Seed: *seed}
	switch *scale {
	case "quick":
		cfg.Scale = experiments.QuickScale()
	case "full":
		cfg.Scale = experiments.FullScale()
	case "bench":
		cfg.Scale = experiments.BenchScale()
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown scale %q (quick|full|bench)\n", *scale)
		os.Exit(2)
	}
	if *parallelism > 0 {
		cfg.Scale.Parallelism = *parallelism
	}

	var ids []string
	if *runID == "all" {
		for _, e := range experiments.Registry() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*runID, ",")
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}

	exitCode := 0
	for _, id := range ids {
		start := time.Now()
		dd0, emdd0 := core.TrainerEvals()
		tables, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			exitCode = 1
			continue
		}
		for ti, t := range tables {
			if err := t.Format(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
				exitCode = 1
			}
			if *csvDir != "" {
				name := t.ID
				if len(tables) > 1 {
					name = fmt.Sprintf("%s_%d", t.ID, ti)
				}
				f, err := os.Create(filepath.Join(*csvDir, name+".csv"))
				if err != nil {
					fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
					exitCode = 1
					continue
				}
				if err := t.CSV(f); err != nil {
					fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
					exitCode = 1
				}
				f.Close()
			}
		}
		elapsed := time.Since(start)
		dd1, emdd1 := core.TrainerEvals()
		fmt.Printf("-- %s completed in %v%s --\n\n",
			id, elapsed.Round(time.Millisecond), trainerStats(elapsed, dd1-dd0, emdd1-emdd0))
	}
	os.Exit(exitCode)
}

// trainerStats renders per-trainer objective-evaluation counts and rates
// for one experiment, or "" when the experiment trained nothing.
func trainerStats(elapsed time.Duration, dd, emdd int64) string {
	secs := elapsed.Seconds()
	if secs <= 0 {
		secs = 1e-9
	}
	var parts []string
	if dd > 0 {
		parts = append(parts, fmt.Sprintf("DD %d evals (%.0f evals/sec)", dd, float64(dd)/secs))
	}
	if emdd > 0 {
		parts = append(parts, fmt.Sprintf("EM-DD %d evals (%.0f evals/sec)", emdd, float64(emdd)/secs))
	}
	if len(parts) == 0 {
		return ""
	}
	return " — " + strings.Join(parts, ", ")
}
